"""Cross-batch warm starts for the runtime's repeated solves.

EDR re-solves the replica-selection problem for every arriving sub-batch,
and consecutive batches are nearly identical instances: the live replica
set, prices and latency mask drift slowly while only the client demands
change.  The geographical load-balancing literature (Adnan et al.'s
dynamic deferral, Mathew et al.'s energy-aware CDN balancing) exploits
exactly this temporal correlation; this module is the EDR-side
realization.

:class:`WarmStartCache` remembers, per ``(live replica set, price
vector)`` key, the last converged allocation rows, the converged
*column-load fractions* (each replica's share of the batch's demand),
each client's latency-eligibility row, and the final LDDM multipliers
(for CDPSM the cached rows are the converged consensus mean — its
consensus state summary).  :func:`project_warm_start` maps a cached
entry onto a new batch's feasible set: returning clients keep their
cached split rescaled to the new demand, new clients (and clients whose
eligibility row changed) are seeded proportionally to the cached
column-load fractions — the load *distribution* over replicas is the
temporally-correlated object; it depends on the replica set and prices,
not on which clients happen to be in the batch — departed clients are
dropped, and the result is pushed through the masked demand projection /
capacity repair so the solvers start from a feasible point.

:func:`recover_mu` re-derives consistent LDDM multipliers at the
projected point's operating load.  The *raw* cached ``mu`` is
deliberately not replayed: it is a sample of the dual limit cycle tied
to the previous batch's total demand, and feeding it to a batch at a
different load level sends the dual far from its new optimum (measured:
it makes warm solves slower than cold ones).

:class:`AdaptiveBudget` shrinks the per-batch iteration cap while warm
starts keep converging early and resets to the cold-start budget the
moment one fails to converge — bounding decision latency without risking
solution quality.

Invalidation rules (enforced by the runtime, tested in
``tests/edr/test_warm_start_system.py``): any membership change — a
replica death or a rejoin — clears the cache, so the next batch cold
starts; a price change rotates the key, which is a miss (old entries age
out of the LRU ring).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core import model
from repro.core.problem import ReplicaSelectionProblem
from repro.errors import ValidationError

__all__ = ["WarmStartEntry", "WarmStartCache", "AdaptiveBudget",
           "project_warm_start", "recover_mu"]

#: Decimal places prices are rounded to inside cache keys (float-stable).
_PRICE_DECIMALS = 9


@dataclass
class WarmStartEntry:
    """Converged per-client state from one solved batch.

    All mappings are keyed by client *name* so entries survive the
    client churn between batches; rows are stored over the key's replica
    ordering.  When the runtime solves in class space
    (:mod:`repro.core.aggregate`), the "clients" are eligibility classes
    and the keys are the classes' packed-mask byte tokens
    (:attr:`~repro.core.aggregate.ClassStructure.keys`) — class identity
    does not depend on which clients are in a batch, so class-space
    entries hit across arbitrary client churn.
    """

    rows: dict[str, np.ndarray]       # client -> allocation row (N,)
    demands: dict[str, float]         # client -> demand the row served
    eligibility: dict[str, np.ndarray]  # client -> bool eligibility row (N,)
    fractions: np.ndarray | None = None  # converged column-load shares (N,)
    mu: dict[str, float] = field(default_factory=dict)  # final LDDM duals
    iterations: int = 0               # iterations the producing solve took
    converged: bool = True


def _cache_key(replicas: Sequence[str], prices: np.ndarray) -> tuple:
    return (tuple(replicas),
            tuple(np.round(np.asarray(prices, dtype=float),
                           _PRICE_DECIMALS).tolist()))


class WarmStartCache:
    """LRU cache of :class:`WarmStartEntry` keyed by (replica set, prices).

    The latency-feasibility component of the key is enforced per client
    row at projection time (the client set varies between batches, so a
    whole-mask key would almost never hit); see
    :func:`project_warm_start`.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValidationError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, WarmStartEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, replicas: Sequence[str],
               prices: np.ndarray) -> WarmStartEntry | None:
        """The entry for this (replica set, price vector), or ``None``."""
        key = _cache_key(replicas, prices)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, replicas: Sequence[str], prices: np.ndarray,
              clients: Sequence[str], allocation: np.ndarray,
              mask: np.ndarray, mu: np.ndarray | None = None,
              iterations: int = 0, converged: bool = True) -> WarmStartEntry:
        """Record a solved batch's allocation (and LDDM ``mu``) for reuse."""
        P = np.asarray(allocation, dtype=float)
        if P.shape != (len(clients), len(replicas)):
            raise ValidationError("allocation shape mismatch in store()")
        loads = P.sum(axis=0)
        total = float(loads.sum())
        entry = WarmStartEntry(
            rows={c: P[i].copy() for i, c in enumerate(clients)},
            demands={c: float(P[i].sum()) for i, c in enumerate(clients)},
            eligibility={c: np.asarray(mask[i], dtype=bool).copy()
                         for i, c in enumerate(clients)},
            fractions=loads / total if total > 0 else None,
            mu={} if mu is None else
               {c: float(mu[i]) for i, c in enumerate(clients)},
            iterations=int(iterations), converged=bool(converged))
        key = _cache_key(replicas, prices)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def invalidate(self) -> None:
        """Drop every entry (membership changed: death or rejoin)."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()


def project_warm_start(entry: WarmStartEntry,
                       problem: ReplicaSelectionProblem,
                       clients: Sequence[str],
                       repair_sweeps: int | None = None) -> np.ndarray:
    """Map a cached allocation onto a new batch's feasible set.

    Returning clients whose eligibility row is unchanged keep their
    cached split rescaled to the new demand; new clients and clients
    whose mask row drifted are seeded proportionally to the cached
    column-load fractions restricted to their eligible replicas (uniform
    only when no cached fraction survives the mask); departed clients
    simply do not appear in ``clients``.  The assembled matrix is then
    repaired (masked demand projection + capacity sweeps, ending on the
    demand projection) so the returned point has exact demand rows,
    respects the latency mask, and fits capacity up to the repair
    tolerance.

    ``repair_sweeps=None`` (the default) uses
    :meth:`~repro.core.problem.ReplicaSelectionProblem.repair`'s own
    sweep budget, which is sized so tight masked instances meet the
    capacity-residual bound — a smaller pinned override here can hand
    the solver a capacity-violating start.
    """
    data = problem.data
    if len(clients) != data.n_clients:
        raise ValidationError("clients length must match problem rows")
    P0 = np.zeros(data.shape)
    for i, c in enumerate(clients):
        row = entry.rows.get(c)
        elig = entry.eligibility.get(c)
        demand = entry.demands.get(c, 0.0)
        if (row is not None and elig is not None
                and row.shape == (data.n_replicas,)
                and np.array_equal(elig, data.mask[i])
                and demand > 0.0):
            P0[i] = row * (data.R[i] / demand)
            continue
        weights = None
        if entry.fractions is not None \
                and entry.fractions.shape == (data.n_replicas,):
            weights = entry.fractions * data.mask[i]
        if weights is None or weights.sum() <= 0.0:
            weights = data.mask[i].astype(float)
        total = weights.sum()
        if total > 0:
            P0[i] = data.R[i] * weights / total
    # Off-mask mass (a cached row whose support shrank) is dropped before
    # the repair so the demand projection redistributes it feasibly.
    P0[~data.mask] = 0.0
    if repair_sweeps is None:
        return problem.repair(P0)
    return problem.repair(P0, sweeps=repair_sweeps)


def recover_mu(problem: ReplicaSelectionProblem,
               allocation: np.ndarray) -> np.ndarray:
    """Consistent LDDM multipliers at an allocation's operating point.

    At optimality every client's multiplier equals minus the marginal
    energy cost of the replicas carrying its load; evaluating the
    cheapest eligible marginal at the warm-start point's column loads
    transfers the dual across batches *at the new batch's load level* —
    unlike the raw cached ``mu``, which is pinned to the old batch's
    operating point.
    """
    data = problem.data
    P = np.asarray(allocation, dtype=float)
    if P.shape != data.shape:
        raise ValidationError("allocation shape mismatch")
    best = model.cheapest_eligible_marginal(data, P.sum(axis=0))
    return np.where(np.isfinite(best), -best, 0.0)


class AdaptiveBudget:
    """Per-batch iteration cap that tightens while warm starts converge.

    A converged warm solve that used ``k`` iterations sets the next warm
    budget to ``max(floor, headroom * k)``; a warm solve that hits its
    budget without converging resets to the cold default.  Cold solves
    always get the full default budget.
    """

    def __init__(self, floor: int = 16, headroom: float = 2.0) -> None:
        if floor < 1:
            raise ValidationError("floor must be >= 1")
        if headroom < 1.0:
            raise ValidationError("headroom must be >= 1")
        self.floor = int(floor)
        self.headroom = float(headroom)
        self._warm_budget: int | None = None

    def budget(self, default: int, warm: bool) -> int:
        """Iteration cap for the next solve."""
        if not warm or self._warm_budget is None:
            return int(default)
        return min(int(default), self._warm_budget)

    def observe(self, iterations: int, budget: int, converged: bool,
                warm: bool) -> None:
        """Feed back one solve's outcome."""
        if not warm:
            return
        if not converged and iterations >= budget:
            self._warm_budget = None  # budget too tight: back to cold cap
        elif converged:
            self._warm_budget = max(
                self.floor, int(np.ceil(self.headroom * max(iterations, 1))))

    def reset(self) -> None:
        """Forget the learned cap (e.g. after a membership change)."""
        self._warm_budget = None

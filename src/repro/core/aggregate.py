"""Exact client-class aggregation: solve in O(K*N) instead of O(C*N).

The objective ``E_g = sum_n u_n (alpha_n L_n + beta_n L_n^gamma_n)``
depends on an allocation only through its column loads ``L_n``, and every
constraint a client contributes is determined by two quantities: its
demand ``R_c`` and its latency-eligibility row ``mask[c]``.  Clients with
identical eligibility rows are therefore *exchangeable* — any feasible
split of their combined demand over the shared support can be re-split
among them without changing loads, feasibility, or cost.

This module groups the ``C`` clients into ``K`` equivalence classes by
eligibility row (``K <= 2^N``; single digits in the paper's scenarios)
and solves a reduced instance with one *super-client* per class:

* **Reduction** (:meth:`ClassStructure.reduce_data`): class ``k`` gets
  demand ``D_k = sum_{c in k} R_c`` and the shared mask row; replicas are
  untouched.  Any feasible ``C x N`` allocation row-sums to a feasible
  ``K x N`` one with identical column loads, so the reduced optimum is no
  worse than the original.
* **Exact disaggregation** (:meth:`ClassStructure.expand_rows`): a class
  row ``Q[k]`` is split over its members proportionally to their demands,
  ``P[c] = (R_c / D_k) * Q[k]``.  Row sums are ``R_c``, the mask and
  nonnegativity are inherited, and column loads — hence the objective —
  are preserved, so the original optimum is no worse than the reduced.

Together the two maps prove the optima coincide *exactly*: aggregation is
a lossless problem transformation, not an approximation.  (This is the
same observation that lets the geographical load-balancing literature —
Adnan et al., arXiv:1204.2320; Mathew et al., arXiv:1109.5641 — plan
over aggregate regional demand instead of individual users.)

Class ordering is stable (first occurrence), so when every client has a
unique eligibility row the reduced instance *is* the original instance
and the aggregated solve is bit-identical to the direct one — the
pass-through guarantee the regression tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import model
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.solution import Solution
from repro.errors import ValidationError

__all__ = ["ClassStructure", "AggregatedProblem", "aggregate_problem",
           "solve_aggregated"]


@dataclass(frozen=True)
class ClassStructure:
    """Partition of clients into eligibility-mask equivalence classes.

    Attributes
    ----------
    class_of_client: (C,) index of each client's class.
    masks: (K, N) class eligibility patterns, in order of first
        occurrence among the clients (stable: appending new clients never
        renumbers existing classes, and K == C reduces to the identity).
    demands: (K,) per-class total demand ``D_k``.
    client_demands: (C,) the original per-client demands ``R_c``.
    weights: (C,) exact disaggregation weights ``R_c / D_k(c)`` (zero for
        clients of zero-demand classes).
    """

    class_of_client: np.ndarray
    masks: np.ndarray
    demands: np.ndarray
    client_demands: np.ndarray
    weights: np.ndarray

    @classmethod
    def from_mask(cls, mask: np.ndarray, demands: np.ndarray
                  ) -> "ClassStructure":
        """Group rows of ``mask`` by identical pattern (first-occurrence
        order) and accumulate ``demands`` per group."""
        M = np.asarray(mask, dtype=bool)
        R = np.asarray(demands, dtype=float)
        if M.ndim != 2 or R.shape != (M.shape[0],):
            raise ValidationError("mask must be (C, N) with one demand per row")
        if M.shape[0] == 0:
            raise ValidationError("need at least one client")
        patterns, first, inverse = np.unique(
            M, axis=0, return_index=True, return_inverse=True)
        inverse = inverse.reshape(-1)
        order = np.argsort(first, kind="stable")
        rank = np.empty(order.size, dtype=int)
        rank[order] = np.arange(order.size)
        class_of_client = rank[inverse]
        class_demand = np.bincount(class_of_client, weights=R,
                                   minlength=order.size)
        denom = class_demand[class_of_client]
        weights = np.divide(R, denom, out=np.zeros_like(R),
                            where=denom > 0.0)
        return cls(class_of_client=class_of_client, masks=patterns[order],
                   demands=class_demand, client_demands=R.copy(),
                   weights=weights)

    # -- views ---------------------------------------------------------------
    @property
    def n_clients(self) -> int:
        """C, the original client count."""
        return self.class_of_client.shape[0]

    @property
    def n_classes(self) -> int:
        """K, the number of distinct eligibility patterns."""
        return self.masks.shape[0]

    @property
    def n_replicas(self) -> int:
        """N, the replica count."""
        return self.masks.shape[1]

    @property
    def keys(self) -> tuple[bytes, ...]:
        """Stable per-class tokens (the packed eligibility pattern).

        A class's identity is its eligibility row, which depends on the
        topology and the live replica set — not on which clients happen
        to be in a batch.  The runtime keys its warm-start cache rows by
        these tokens so cached class allocations survive arbitrary client
        churn between batches.
        """
        return tuple(row.tobytes() for row in self.masks)

    def members(self, k: int) -> np.ndarray:
        """Client indices of class ``k``."""
        if not 0 <= k < self.n_classes:
            raise ValidationError(f"class index {k} out of range")
        return np.nonzero(self.class_of_client == k)[0]

    # -- reduction / expansion maps ------------------------------------------
    def reduce_data(self, data: ProblemData) -> ProblemData:
        """The super-client instance: one row per class, replicas as-is."""
        if data.mask.shape != (self.n_clients, self.n_replicas):
            raise ValidationError("data shape does not match class structure")
        return ProblemData(demands=self.demands, capacities=data.B,
                           prices=data.u, alpha=data.alpha, beta=data.beta,
                           gamma=data.gamma, mask=self.masks)

    def reduce_rows(self, allocation: np.ndarray) -> np.ndarray:
        """Sum a (C, N) allocation's rows per class -> (K, N).

        The row-sum image of a feasible allocation is feasible for the
        reduced instance and has identical column loads.
        """
        P = np.asarray(allocation, dtype=float)
        if P.shape != (self.n_clients, self.n_replicas):
            raise ValidationError("allocation shape mismatch in reduce_rows")
        K = self.n_classes
        out = np.empty((K, self.n_replicas))
        for n in range(self.n_replicas):
            out[:, n] = np.bincount(self.class_of_client,
                                    weights=P[:, n], minlength=K)
        return out

    def expand_rows(self, reduced: np.ndarray) -> np.ndarray:
        """Exact disaggregation of a (K, N) class allocation -> (C, N).

        ``P[c] = (R_c / D_k) * Q[k]``: demand rows, the mask, and
        nonnegativity hold exactly, column loads (and therefore the
        objective) are preserved, and members of a zero-demand class get
        zero rows.  For singleton classes the weight is exactly 1.0, so
        pass-through expansion is bit-identical.
        """
        Q = np.asarray(reduced, dtype=float)
        if Q.shape != (self.n_classes, self.n_replicas):
            raise ValidationError("reduced allocation shape mismatch")
        return Q[self.class_of_client] * self.weights[:, None]

    def expand_mu(self, reduced_mu: np.ndarray) -> np.ndarray:
        """Broadcast per-class LDDM multipliers to the member clients.

        Exchangeable clients share a dual variable at the optimum (the
        multiplier prices a unit of the class's demand), so the class
        value is exact for every member.
        """
        mu = np.asarray(reduced_mu, dtype=float)
        if mu.shape != (self.n_classes,):
            raise ValidationError("reduced mu must have one entry per class")
        return mu[self.class_of_client]


@dataclass(frozen=True)
class AggregatedProblem:
    """A problem instance paired with its class-space reduction."""

    original: ReplicaSelectionProblem
    problem: ReplicaSelectionProblem     # the reduced (K-row) instance
    structure: ClassStructure

    @property
    def n_classes(self) -> int:
        """K, the reduced row count."""
        return self.structure.n_classes

    def expand_solution(self, solution: Solution) -> Solution:
        """Disaggregate a reduced-space :class:`Solution` to client space.

        The allocation is expanded exactly; the objective is re-evaluated
        on the expanded matrix (it agrees with the reduced objective to
        float round-off because column loads are preserved); iteration and
        communication counts are the reduced solve's — that *is* what the
        aggregated execution performs.
        """
        P = self.structure.expand_rows(solution.allocation)
        return Solution(
            allocation=P,
            objective=model.total_energy(self.original.data, P),
            iterations=solution.iterations,
            converged=solution.converged,
            objective_history=solution.objective_history,
            residual_history=solution.residual_history,
            messages=solution.messages,
            comm_floats=solution.comm_floats,
            method=solution.method,
            solve_time_s=solution.solve_time_s,
            warm_started=solution.warm_started,
            n_classes=self.n_classes,
        )


def aggregate_problem(problem: ReplicaSelectionProblem) -> AggregatedProblem:
    """Build the class structure and reduced instance for ``problem``."""
    structure = ClassStructure.from_mask(problem.data.mask, problem.data.R)
    reduced = ReplicaSelectionProblem(structure.reduce_data(problem.data))
    return AggregatedProblem(original=problem, problem=reduced,
                             structure=structure)


def solve_aggregated(problem: ReplicaSelectionProblem, method: str = "lddm",
                     *, initial: np.ndarray | None = None,
                     mu0: np.ndarray | None = None, **kwargs) -> Solution:
    """Solve ``problem`` in class space and disaggregate exactly.

    ``method`` is ``"lddm"`` or ``"cdpsm"``; ``kwargs`` go to the solver.
    ``initial`` (and, for LDDM, ``mu0``) warm-start the reduced solve and
    must therefore be *class-space* arrays — (K, N) / (K,).  The
    per-iteration cost is O(K*N) regardless of the client count.  The
    returned solution's ``solve_time_s`` covers the whole call
    (reduction + solve + expansion) and ``n_classes`` reports K.
    """
    from time import perf_counter

    from repro.core.cdpsm import CdpsmSolver
    from repro.core.lddm import LddmSolver

    solvers = {"lddm": LddmSolver, "cdpsm": CdpsmSolver}
    if method not in solvers:
        raise ValidationError(f"unknown aggregated solver {method!r}")
    if mu0 is not None and method != "lddm":
        raise ValidationError("mu0 applies to the lddm solver only")
    t0 = perf_counter()
    agg = aggregate_problem(problem)
    solver = solvers[method](agg.problem, **kwargs)
    if method == "lddm":
        reduced_solution = solver.solve(initial, mu0=mu0)
    else:
        reduced_solution = solver.solve(initial)
    solution = agg.expand_solution(reduced_solution)
    solution.solve_time_s = perf_counter() - t0
    return solution

"""The energy cost model (Eq. 1) and its gradient, vectorized.

    E_n(L_n) = u_n * (alpha_n * L_n + beta_n * L_n**gamma_n)
    E_g(P)   = sum_n E_n(sum_c P[c, n])

The objective is convex in P for ``gamma >= 1`` and its gradient with
respect to ``P[c, n]`` depends only on the column load:

    dE_g/dP[c, n] = u_n * (alpha_n + beta_n * gamma_n * L_n**(gamma_n - 1))
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ProblemData
from repro.errors import ValidationError

__all__ = ["replica_loads", "replica_energy", "total_energy",
           "energy_gradient", "load_marginal_cost",
           "cheapest_eligible_marginal"]


def replica_loads(allocation: np.ndarray) -> np.ndarray:
    """Column loads ``L_n = sum_c P[c, n]`` of an allocation matrix."""
    P = np.asarray(allocation, dtype=float)
    if P.ndim != 2:
        raise ValidationError("allocation must be a (C, N) matrix")
    return P.sum(axis=0)


def replica_energy(data: ProblemData, loads: np.ndarray) -> np.ndarray:
    """Per-replica energy cost ``E_n`` for column loads ``loads``."""
    L = np.asarray(loads, dtype=float)
    if L.shape != (data.n_replicas,):
        raise ValidationError("loads must have one entry per replica")
    if np.any(L < -1e-9):
        raise ValidationError("loads must be nonnegative")
    L = np.maximum(L, 0.0)
    return data.u * (data.alpha * L + data.beta * L ** data.gamma)


def total_energy(data: ProblemData, allocation: np.ndarray) -> float:
    """The global objective ``E_g(P)``."""
    return float(replica_energy(data, replica_loads(allocation)).sum())


def load_marginal_cost(data: ProblemData, loads: np.ndarray) -> np.ndarray:
    """Marginal cost ``E_n'(L_n)`` per replica (the gradient's row value)."""
    L = np.maximum(np.asarray(loads, dtype=float), 0.0)
    if L.shape != (data.n_replicas,):
        raise ValidationError("loads must have one entry per replica")
    # gamma >= 1 so the exponent is nonnegative; numpy gives 0**0 == 1,
    # which is the correct gamma == 1 limit (derivative beta*gamma at L=0).
    powered = L ** (data.gamma - 1.0)
    return data.u * (data.alpha + data.beta * data.gamma * powered)


def cheapest_eligible_marginal(data: ProblemData,
                               loads: np.ndarray) -> np.ndarray:
    """Per-client minimum of ``E_n'(L_n)`` over eligible replicas.

    Rows with no eligible replica get ``+inf`` so callers can decide
    their own convention for unservable clients.  This is the operating
    point the LDDM multipliers settle at (``mu_c = -min``), shared by
    :func:`repro.core.lddm.initial_mu` and
    :func:`repro.core.warmstart.recover_mu`.
    """
    marginal = load_marginal_cost(data, loads)
    return np.where(data.mask, marginal[None, :], np.inf).min(axis=1)


def energy_gradient(data: ProblemData, allocation: np.ndarray) -> np.ndarray:
    """Gradient of ``E_g`` with respect to P, masked to eligible entries."""
    P = np.asarray(allocation, dtype=float)
    if P.shape != data.shape:
        raise ValidationError("allocation shape mismatch")
    marginal = load_marginal_cost(data, replica_loads(P))
    grad = np.broadcast_to(marginal, data.shape).copy()
    grad[~data.mask] = 0.0
    return grad

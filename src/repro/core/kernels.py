"""Batched numerical kernels for the distributed solvers.

The matrix-form solvers simulate *N* replicas, each doing local work per
iteration: CDPSM projects every replica's full estimate onto its local
constraint set (Dykstra), LDDM solves every replica's column subproblem
(KKT + bisection).  The straightforward transcription loops over replicas
in Python — ``O(N)`` interpreter round trips per iteration, exactly the
hot path that dominates the Fig. 9 scaling sweeps.

This module removes those loops: each kernel runs *all* replicas' work as
stacked numpy array programs — ``(K, C, N)`` stacks for the projections,
``(C, N)`` column blocks for the subproblems — while reproducing the
scalar implementations element for element:

* the same per-instance early-stopping rules are honored by *freezing*
  converged slices (an instance that converges at inner iteration ``k``
  keeps the state it had at ``k``, exactly as the scalar code that broke
  out of its loop there), and
* every row/column operation is arithmetically identical to its scalar
  counterpart (same sort-and-threshold projections, same bisection
  midpoint sequences),

so the scalar code paths in :mod:`repro.core.projection` and
:mod:`repro.core.subproblem` remain the reference oracles and the
property tests can demand 1e-9 agreement.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ProblemData
from repro.core.projection import (
    _project_rows_vectorized,
    support_groups,
)
from repro.core.subproblem import _BISECT_ITERS, _BISECT_TOL
from repro.errors import ValidationError

__all__ = [
    "stack_project_demands",
    "project_local_sets_stacked",
    "cdpsm_gradient_step",
    "lddm_solve_columns",
    "repair_stack",
    "objective_stack",
    "objective_history",
    "waterfill_rows",
]


# -- stacked demand projection ------------------------------------------------

def stack_project_demands(stack: np.ndarray, demands: np.ndarray,
                          mask: np.ndarray) -> np.ndarray:
    """:func:`~repro.core.projection.project_demands` on a (K, C, N) stack.

    Every (C, N) slice is projected row-wise onto its masked demand
    simplexes; masked rows are grouped by support pattern so the whole
    stack needs one vectorized projection call per distinct pattern.
    """
    S = np.asarray(stack, dtype=float)
    if S.ndim != 3:
        raise ValidationError("stack must be (K, C, N)")
    K, C, N = S.shape
    R = np.asarray(demands, dtype=float)
    M = np.asarray(mask, dtype=bool)
    if M.shape != (C, N) or R.shape != (C,):
        raise ValidationError("shape mismatch in stack_project_demands")
    if np.any(R < 0):
        raise ValidationError("demands must be nonnegative")
    if M.all():
        flat = _project_rows_vectorized(S.reshape(K * C, N), np.tile(R, K))
        return flat.reshape(K, C, N)
    out = np.zeros_like(S)
    for rows, cols in support_groups(M):
        if cols.size == 0:
            bad = rows[R[rows] > 0]
            if bad.size:
                raise ValidationError(
                    f"client {int(bad[0])} has positive demand "
                    "but no eligible replica")
            continue
        sub = S[np.ix_(np.arange(K), rows, cols)]
        flat = _project_rows_vectorized(
            sub.reshape(K * rows.size, cols.size), np.tile(R[rows], K))
        out[np.ix_(np.arange(K), rows, cols)] = \
            flat.reshape(K, rows.size, cols.size)
    return out


def _rows_capped_simplex(V: np.ndarray, caps: np.ndarray) -> np.ndarray:
    """Row-wise ``project_capped_simplex``: each row onto its own cap."""
    clipped = np.maximum(V, 0.0)
    over = clipped.sum(axis=1) > caps
    if not over.any():
        return clipped
    clipped[over] = _project_rows_vectorized(V[over], caps[over])
    return clipped


# -- stacked Dykstra (CDPSM local sets) --------------------------------------

def project_local_sets_stacked(stack: np.ndarray, demands: np.ndarray,
                               mask: np.ndarray, columns: np.ndarray,
                               caps: np.ndarray, max_iter: int = 1000,
                               tol: float = 1e-8) -> np.ndarray:
    """Dykstra projection of every slice onto its own local set, at once.

    Slice ``i`` of the (K, C, N) stack is projected onto
    ``{P >= 0 on mask, row sums = R, column columns[i] sums <= caps[i]}``
    — elementwise identical to calling
    :func:`~repro.core.projection.project_local_set` per slice.  A slice
    whose per-set projections agree to ``tol`` is frozen (the scalar code
    breaks there), so early convergence of one replica never perturbs the
    others' iterates.
    """
    x = np.array(stack, dtype=float)
    if x.ndim != 3:
        raise ValidationError("stack must be (K, C, N)")
    K = x.shape[0]
    cols = np.asarray(columns, dtype=int)
    caps = np.asarray(caps, dtype=float)
    if cols.shape != (K,) or caps.shape != (K,):
        raise ValidationError("columns/caps must have one entry per slice")
    p = np.zeros_like(x)
    # The capacity-set correction q is nonzero only in each slice's own
    # capacity column (the column-cap projection leaves other columns
    # untouched), so it is tracked as one (K, C) column, not a full stack.
    qcol = np.zeros((K, x.shape[1]))
    scale = np.maximum(
        np.maximum(np.max(np.abs(demands), initial=0.0), caps), 1.0)
    active = np.arange(K)
    for _ in range(max_iter):
        # While every slice is still live, plain slices avoid the copies
        # fancy indexing would take of the full stack.
        ix = slice(None) if active.size == K else active
        idx = np.arange(active.size)
        col_a = cols[ix]
        w = x[ix] + p[ix]
        y = stack_project_demands(w, demands, mask)
        p[ix] = w - y
        ycol = y[idx, :, col_a]
        zcol = ycol + qcol[ix]
        zproj = _rows_capped_simplex(zcol, caps[ix])
        qcol[ix] = zcol - zproj
        # Off-column, the capacity projection returns y unchanged, so the
        # per-set discrepancy |y - x| lives entirely in the column.
        diff = np.max(np.abs(ycol - zproj), axis=1)
        y[idx, :, col_a] = zproj
        x[ix] = y
        keep = diff >= tol * scale[ix]
        active = active[keep]
        if active.size == 0:
            break
    return stack_project_demands(x + p, demands, mask)


# -- CDPSM gradient step ------------------------------------------------------

def cdpsm_gradient_step(data: ProblemData, V: np.ndarray,
                        d_k: float) -> np.ndarray:
    """All replicas' local-gradient steps on a (N, C, N) consensus stack.

    Replica ``i``'s local objective touches only its own column, with
    marginal cost evaluated at its estimate of its own load
    ``V[i][:, i].sum()`` — the vectorized form of the per-replica step in
    Algorithm 1.
    """
    N = data.n_replicas
    if V.shape != (N, data.n_clients, N):
        raise ValidationError("V must be (N, C, N)")
    idx = np.arange(N)
    own = np.maximum(V.sum(axis=1)[idx, idx], 0.0)
    powered = own ** (data.gamma - 1.0)
    marginal = data.u * (data.alpha + data.beta * data.gamma * powered)
    stepped = V.copy()
    stepped[idx, :, idx] -= d_k * marginal[:, None] * data.mask.T
    return stepped


# -- LDDM column subproblems --------------------------------------------------

def _marginal_cols(data: ProblemData, s: np.ndarray) -> np.ndarray:
    """Vector form of ``subproblem._marginal`` over all replica columns."""
    base = np.where(s > 0.0, s, 1.0)
    powered = np.where(data.gamma == 1.0, 1.0,
                       np.where(s > 0.0, base ** (data.gamma - 1.0), 0.0))
    return data.u * (data.alpha + data.beta * data.gamma * powered)


def _exact_columns(data: ProblemData, mu: np.ndarray) -> np.ndarray:
    """All replicas' eps=0 closed-form subproblems (paper problem (5))."""
    mask = data.mask
    u, a, b, g, B = data.u, data.alpha, data.beta, data.gamma, data.B
    mu_col = np.where(mask, mu[:, None], np.inf)
    mu_min = mu_col.min(axis=0, initial=np.inf)
    has = mask.any(axis=0)
    base = np.where(has, u * a + mu_min, np.inf)
    lin = (g == 1.0) | (b == 0.0)
    slope = base + np.where(g == 1.0, u * b * g, 0.0)
    s_lin = np.where(slope < 0, B, 0.0)
    denom = np.where(lin | (b == 0.0), 1.0, u * b * g)
    ratio = np.where(~lin & (base < 0), -base / denom, 0.0)
    expo = 1.0 / np.where(g > 1.0, g - 1.0, 1.0)
    s_int = np.minimum(B, ratio ** expo)
    s_star = np.where(lin, s_lin, np.where(base >= 0, 0.0, s_int))
    s_star = np.where(has, s_star, 0.0)
    ties = np.isclose(mu_col, mu_min[None, :], rtol=0, atol=1e-12) & mask
    counts = np.maximum(ties.sum(axis=0), 1)
    return np.where(ties, (s_star / counts)[None, :], 0.0)


def _proximal_columns(data: ProblemData, mu: np.ndarray, prev: np.ndarray,
                      epsilon: float) -> np.ndarray:
    """All replicas' proximal subproblems in one KKT/bisection pass.

    Mirrors ``subproblem._solve_proximal`` column-parallel: phase 1
    bisects the uncapacitated total ``s`` per column, phase 2 bisects the
    capacity multiplier ``nu`` for the columns whose cap binds.  Each
    column follows the scalar midpoint sequence and freezes at the scalar
    stopping rule.
    """
    mask = data.mask
    B = data.B
    ref = np.where(mask, np.asarray(prev, dtype=float), 0.0)

    def p_of_t(t: np.ndarray, cols: np.ndarray) -> np.ndarray:
        raw = ref[:, cols] - (mu[:, None] + t[None, :]) / epsilon
        return np.where(mask[:, cols], np.maximum(0.0, raw), 0.0)

    def s_of_t(t: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return p_of_t(t, cols).sum(axis=0)

    marg0 = _marginal_cols(data, np.zeros(data.n_replicas))
    s_hi = s_of_t(marg0, np.arange(data.n_replicas))
    out = np.zeros(data.shape)
    live = mask.any(axis=0) & (s_hi > 0.0)
    if not live.any():
        return out
    cols = np.nonzero(live)[0]

    # Phase 1: capacity ignored — bisect g(s) = S(t(s)) - s per column.
    lo = np.zeros(cols.size)
    hi = s_hi[cols].copy()
    tol_s = _BISECT_TOL * np.maximum(1.0, s_hi[cols])
    act = np.ones(cols.size, dtype=bool)
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        sub = np.nonzero(act)[0]
        gval = s_of_t(_marginal_cols(data, _scatter(mid, cols, data))[cols],
                      cols)[sub] - mid[sub]
        pos = gval > 0
        lo[sub[pos]] = mid[sub[pos]]
        hi[sub[~pos]] = mid[sub[~pos]]
        act[sub] = (hi[sub] - lo[sub]) >= tol_s[sub]
        if not act.any():
            break
    s_star = 0.5 * (lo + hi)

    free = s_star <= B[cols] + 1e-12
    if free.any():
        f_cols = cols[free]
        t_free = _marginal_cols(data, _scatter(s_star[free], f_cols, data))
        out[:, f_cols] = p_of_t(t_free[f_cols], f_cols)

    # Phase 2: capacity binds — s = B, bisect h(nu) = S(t(B) + nu) - B.
    bound = ~free
    if bound.any():
        b_cols = cols[bound]
        t_base = _marginal_cols(data, B)[b_cols]

        def h_of(nu: np.ndarray) -> np.ndarray:
            return s_of_t(t_base + nu, b_cols) - B[b_cols]

        nu_hi = np.ones(b_cols.size)
        growing = h_of(nu_hi) > 0
        while growing.any():
            nu_hi[growing] *= 2.0
            growing = growing & (nu_hi <= 1e18) & (h_of(nu_hi) > 0)
        lo = np.zeros(b_cols.size)
        hi = nu_hi.copy()
        tol_nu = _BISECT_TOL * np.maximum(1.0, nu_hi)
        act = np.ones(b_cols.size, dtype=bool)
        for _ in range(_BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            sub = np.nonzero(act)[0]
            hval = h_of(mid)[sub]
            pos = hval > 0
            lo[sub[pos]] = mid[sub[pos]]
            hi[sub[~pos]] = mid[sub[~pos]]
            act[sub] = (hi[sub] - lo[sub]) >= tol_nu[sub]
            if not act.any():
                break
        nu = 0.5 * (lo + hi)
        p = p_of_t(t_base + nu, b_cols)
        total = p.sum(axis=0)
        rescale = np.where(total > 0, B[b_cols] / np.where(total > 0, total,
                                                           1.0), 1.0)
        out[:, b_cols] = p * rescale[None, :]
    return out


def _scatter(vals: np.ndarray, cols: np.ndarray,
             data: ProblemData) -> np.ndarray:
    """Place per-column values back into a full (N,) vector (zeros else)."""
    full = np.zeros(data.n_replicas)
    full[cols] = vals
    return full


def lddm_solve_columns(data: ProblemData, mu: np.ndarray, prev: np.ndarray,
                       epsilon: float) -> np.ndarray:
    """One LDDM round of local subproblem solves, all replicas batched.

    Produces the same (C, N) solution block as looping
    :func:`~repro.core.subproblem.solve_replica_subproblem` over columns.
    """
    mu = np.asarray(mu, dtype=float)
    if mu.shape != (data.n_clients,):
        raise ValidationError("mu must have one entry per client")
    if epsilon < 0:
        raise ValidationError("epsilon must be nonnegative")
    if epsilon == 0.0:
        return _exact_columns(data, mu)
    return _proximal_columns(data, mu, prev, epsilon)


# -- batched row water-fill (sharded Jacobi pass) -----------------------------

def waterfill_rows(u: np.ndarray, alpha: np.ndarray, beta: np.ndarray,
                   gamma: np.ndarray, demands: np.ndarray, base: np.ndarray,
                   head: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Water-fill every class row against fixed per-row base loads, batched.

    The Jacobi companion of
    :meth:`repro.core.incremental.IncrementalState._rebalance_row`: row
    ``k`` spreads ``demands[k]`` over the columns with ``head[k] > 0`` so
    every loaded column sits at a common marginal level ``t_k``, the
    marginal ``m(x) = u*(alpha + beta*gamma*x^(gamma-1))`` evaluated at
    ``base[k] + fill`` — but *all* rows solve simultaneously against the
    base loads they were handed, instead of Gauss–Seidel one at a time.
    This is the opening pass of a shard solve round: ``base`` carries the
    other rows' (and other shards') loads from the previous round, and a
    scalar Gauss–Seidel refine polishes the intra-shard interactions the
    simultaneous fill ignores.

    Each row bisects its own level with the kernels' iteration budget and
    freezes at the scalar stopping rule (demand overshoot within
    ``1e-12 * D``).  Returns ``(P, fits)`` where ``P`` is the (K, N) fill
    (rows sum to their demands) and ``fits[k]`` is False when row ``k``'s
    demand exceeds its total headroom — such a row grabs *all* its
    headroom (demand left unmet) so the caller can keep iterating while
    other shards vacate capacity.
    """
    u = np.asarray(u, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    gamma = np.asarray(gamma, dtype=float)
    D = np.asarray(demands, dtype=float)
    base = np.asarray(base, dtype=float)
    head = np.asarray(head, dtype=float)
    if base.ndim != 2:
        raise ValidationError("base must be (K, N)")
    K, N = base.shape
    if head.shape != (K, N) or D.shape != (K,):
        raise ValidationError("shape mismatch in waterfill_rows")
    if u.shape != (N,) or alpha.shape != (N,) or beta.shape != (N,) \
            or gamma.shape != (N,):
        raise ValidationError("cost vectors must have one entry per replica")

    # Constant-marginal columns (gamma == 1 or beta == 0) step from 0 to
    # full headroom as t crosses their level — same hoisting as the
    # scalar path's _constf/_levelf.
    const = (gamma == 1.0) | (beta == 0.0)
    level = u * (alpha + np.where(gamma == 1.0, beta * gamma, 0.0))
    bg = np.where(const, 1.0, beta * gamma)
    em1 = gamma - 1.0
    expo = np.where(em1 > 0.0, 1.0 / np.where(em1 > 0.0, em1, 1.0), 1.0)
    pos = D > 0.0
    total_head = head.sum(axis=1)
    fits = (total_head >= D * (1.0 - 1e-9)) | ~pos
    elig = head > 0.0

    with np.errstate(invalid="ignore", over="ignore"):
        m_lo = np.where(const[None, :], level[None, :],
                        u * (alpha + bg * base ** em1))
        m_hi = np.where(const[None, :], level[None, :],
                        u * (alpha + bg * (base + head) ** em1))
    lo = np.where(elig, m_lo, np.inf).min(axis=1, initial=np.inf)
    lo = np.where(np.isfinite(lo), lo, 0.0)
    hi = np.where(elig, m_hi, -np.inf).max(axis=1, initial=-np.inf)
    hi = np.maximum(np.where(np.isfinite(hi), hi, 0.0), lo) + 1e-12
    tol_t = 1e-13 * np.maximum(np.abs(hi), 1.0)
    d_tol = 1e-12 * D

    def fill(t: np.ndarray) -> np.ndarray:
        """Per-row load admitted at water levels ``t`` (clipped to head)."""
        with np.errstate(invalid="ignore", over="ignore"):
            r = (t[:, None] / u - alpha) / bg
            x = np.where(r > 0.0, r ** expo - base, 0.0)
        x = np.clip(np.where(np.isnan(x), 0.0, x), 0.0, head)
        step = np.where(t[:, None] >= level[None, :], head, 0.0)
        return np.where(const[None, :], step, x)

    # Invariant: fill(hi) sums >= D for every fitting row (all headroom
    # admitted at the top bracket), fill(lo) <= D; each row bisects its
    # level to the demand equality and freezes once the overshoot is
    # inside d_tol — exactly the scalar _rebalance_row stopping rule.
    act = pos & fits
    for _ in range(_BISECT_ITERS):
        if not act.any():
            break
        mid = np.where(act, 0.5 * (lo + hi), hi)
        s = fill(mid).sum(axis=1)
        below = s < D
        lo = np.where(act & below, mid, lo)
        hi = np.where(act & ~below, mid, hi)
        done = (~below & (s - D <= d_tol)) | (hi - lo < tol_t)
        act = act & ~done
    P = fill(hi)
    S = P.sum(axis=1)

    # Scaling down (fill(hi) >= D) lands exactly on the demand while
    # staying inside every column's headroom; a collapsed level (S == 0)
    # falls back to a proportional spread, the scalar corner case.
    scale = np.ones(K)
    norm = pos & fits & (S > 0.0)
    scale[norm] = D[norm] / S[norm]
    prop = pos & fits & (S <= 0.0)
    P = P * scale[:, None]
    if prop.any():
        pscale = D[prop] / np.maximum(total_head[prop], 1e-300)
        P[prop] = head[prop] * pscale[:, None]
    unfit = pos & ~fits
    if unfit.any():
        P[unfit] = head[unfit]
    P[~pos] = 0.0
    return P, fits


# -- batched repair / objective history --------------------------------------

def repair_stack(data: ProblemData, stack: np.ndarray, sweeps: int = 50,
                 tol: float = 1e-10) -> np.ndarray:
    """``problem.repair`` applied to every slice of a (K, C, N) stack.

    Alternates the stacked demand projection with proportional column
    scaling, freezing each slice as soon as it has no capacity overshoot
    (where the scalar loop breaks).
    """
    X = stack_project_demands(np.asarray(stack, dtype=float),
                              data.R, data.mask)
    active = np.arange(X.shape[0])
    for _ in range(sweeps):
        loads = X[active].sum(axis=1)
        over = loads > data.B[None, :] * (1 + tol)
        busy = over.any(axis=1)
        if not busy.any():
            break
        keep = active[busy]
        scale = np.where(over[busy], data.B[None, :]
                         / np.maximum(loads[busy], 1e-300), 1.0)
        X[keep] = stack_project_demands(X[keep] * scale[:, None, :],
                                        data.R, data.mask)
        active = keep
    return X


def objective_stack(data: ProblemData, stack: np.ndarray) -> np.ndarray:
    """``E_g`` of every slice of a (K, C, N) stack (vectorized Eq. 1)."""
    loads = np.maximum(np.asarray(stack, dtype=float).sum(axis=1), 0.0)
    energy = data.u * (data.alpha * loads + data.beta * loads ** data.gamma)
    return energy.sum(axis=1)


def objective_history(data: ProblemData, candidates: list[np.ndarray],
                      sweeps: int = 10, chunk: int = 128) -> list[float]:
    """Objective-of-repaired-iterate curve (the Fig. 5 series), batched.

    Equivalent to ``[objective(repair(c, sweeps)) for c in candidates]``
    but repairs the iterates in stacked chunks, so history tracking no
    longer dominates solve time at large C.
    """
    out: list[float] = []
    for start in range(0, len(candidates), max(chunk, 1)):
        block = np.stack(candidates[start:start + max(chunk, 1)])
        repaired = repair_stack(data, block, sweeps=sweeps)
        out.extend(float(v) for v in objective_stack(data, repaired))
    return out

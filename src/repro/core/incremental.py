"""Incremental delta-event re-solve: O(K*N) updates instead of batch solves.

The warm-start layer (:mod:`repro.core.warmstart`) projects a *full*
solve across batches; this module takes the temporal-correlation exploit
one step further for the event granularity the ROADMAP targets — a
single client arriving, departing, or changing demand should cost
microseconds to milliseconds, not a re-projected batch solve.  The same
slowly-drifting-operating-point assumption grounds Adnan et al.'s
dynamic deferral (arXiv:1204.2320) and Mathew et al.'s CDN energy
balancing (arXiv:1109.5641): between events the converged allocation is
*still optimal for every untouched row*, so only the affected
eligibility class needs new work.

:class:`IncrementalState` holds the converged class-space allocation
``Q`` (one row per eligibility class, the representation
:mod:`repro.core.aggregate` solves in), the column loads ``L = sum_k
Q[k]``, and the recovered per-class multipliers.  An event maps to its
class by the class's packed-mask token (the same tokens
:attr:`~repro.core.aggregate.ClassStructure.keys` uses for warm-start
cache rows), adjusts that class's demand, and re-solves *only that row*
against the current column loads:

    minimize  sum_n E_n(L_n^{-k} + p_n)
    s.t.      sum_n p_n = D_k,  0 <= p_n <= B_n - L_n^{-k},  p on mask_k

where ``L^{-k}`` are the loads with row k removed.  The row subproblem
has the same KKT structure as the batched LDDM column subproblem in
:mod:`repro.core.kernels` — at the optimum every loaded column sits at a
common marginal-cost water level ``t`` — and is solved the same way:
one-dimensional bisection on ``t`` (scalar Python against cost
constants hoisted at construction — the eligible column count is single
digits, so numpy dispatch dominated here — terminating on a demand-sum
tolerance far inside the KKT bound), with the marginal evaluated *at
the current operating loads* rather than from zero.  Because one row's move shifts
the marginals other rows see, a few Gauss–Seidel sweeps over all K rows
follow until the cross-row KKT residual (most expensive loaded column vs
cheapest column with headroom, per class) is below tolerance — K is
single digits in practice, so a full sweep costs O(K*N) with tiny
constants.

The state *monitors its own validity* and requests a full (warm) solve
instead of silently degrading.  Fallback triggers:

* **capacity** — a class's demand no longer fits the eligible headroom,
  or refinement would need mass swaps through saturated columns;
* **drift** — accumulated |demand delta| since the last full solve
  exceeds ``drift_limit`` of the baseline total (the proxy for
  accumulated objective gap);
* **convergence** — the Gauss–Seidel sweeps did not reach the KKT
  residual bound within the sweep budget.

Membership changes and price rotations are detected by the runtime (the
state is keyed to one (live replica set, price vector), exactly like a
warm-start cache entry) and rebuild the state from the next full solve.

Multipliers are recovered at the new operating point exactly as
:func:`repro.core.warmstart.recover_mu` does — ``mu_k`` equals minus the
cheapest eligible marginal at the current loads — so a fallback solve
can warm-start from the incremental state's ``rows``/``mu``.

A state can carry a *background* load vector — column load contributed
by rows it does not own.  Marginals are evaluated at ``background +
loads`` and headroom shrinks to ``B - background - loads``, which is
exactly the subproblem a solve shard faces inside the sharded control
plane (:mod:`repro.core.shard`): its classes best-respond to the loads
of every other shard, held fixed for the round.  With the default
all-zero background the arithmetic is bit-identical to the monolithic
behaviour (``x - 0.0 == x`` for the finite nonnegative operands here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.params import ProblemData
from repro.core.subproblem import _BISECT_ITERS
from repro.errors import ValidationError

__all__ = ["ClientArrival", "ClientDeparture", "DemandChange",
           "EventResult", "IncrementalState"]

#: Relative share of a row below which an entry counts as unloaded when
#: measuring the cross-row KKT residual.
_ACTIVE_EPS = 1e-12


# -- events -------------------------------------------------------------------

@dataclass(frozen=True)
class ClientArrival:
    """A new client with ``demand`` and an eligibility row over replicas."""

    client: str
    demand: float
    eligibility: np.ndarray    # (N,) bool


@dataclass(frozen=True)
class ClientDeparture:
    """A registered client leaves; its demand drains from its class."""

    client: str


@dataclass(frozen=True)
class DemandChange:
    """A registered client's demand becomes ``demand`` (absolute)."""

    client: str
    demand: float


@dataclass(frozen=True)
class EventResult:
    """Outcome of one :meth:`IncrementalState.apply_event` (or retarget).

    ``ok`` is False when the state declined the update and a full warm
    solve should run instead; ``reason`` then names the fallback trigger
    (``"capacity"``, ``"drift"``, ``"convergence"``, or ``"stale"``).
    ``events`` counts the class-demand changes applied, ``sweeps`` the
    Gauss–Seidel refinement sweeps the update needed.
    """

    ok: bool
    reason: str | None = None
    events: int = 0
    sweeps: int = 0


class IncrementalState:
    """Converged class-space allocation, updatable one event at a time."""

    def __init__(self, data: ProblemData, tokens: Sequence[bytes],
                 allocation: np.ndarray, *,
                 clients: dict[str, tuple[bytes, float]] | None = None,
                 drift_limit: float = 0.5, kkt_rtol: float = 1e-8,
                 max_sweeps: int = 64,
                 background: np.ndarray | None = None) -> None:
        """Build from a solved *class-space* instance.

        ``data`` is the reduced (K-row) instance — one row per
        eligibility class — and ``allocation`` its converged (K, N)
        allocation; ``tokens`` are the classes' packed-mask byte tokens
        in row order.  ``clients`` optionally pre-registers client ->
        (token, demand) members so client-granular events can be applied
        without a separate registration pass.  ``background`` is column
        load owned by rows outside this state (other shards); it offsets
        every marginal/headroom computation and defaults to zero.
        """
        Q = np.asarray(allocation, dtype=float)
        if Q.shape != data.shape:
            raise ValidationError("allocation shape mismatch")
        if len(tokens) != data.n_clients:
            raise ValidationError("need one token per class row")
        if len(set(tokens)) != len(tokens):
            raise ValidationError("class tokens must be unique")
        if drift_limit <= 0:
            raise ValidationError("drift_limit must be positive")
        if max_sweeps < 1:
            raise ValidationError("max_sweeps must be >= 1")
        self.B = data.B.copy()
        self.u = data.u.copy()
        self.alpha = data.alpha.copy()
        self.beta = data.beta.copy()
        self.gamma = data.gamma.copy()
        self.masks = data.mask.copy()
        self.D = data.R.copy()
        if background is None:
            self.background = np.zeros(self.B.shape[0])
        else:
            bg = np.asarray(background, dtype=float)
            if bg.shape != self.B.shape:
                raise ValidationError("background has wrong length")
            self.background = np.maximum(bg, 0.0)
        self.Q = np.where(self.masks, np.maximum(Q, 0.0), 0.0)
        self.tokens: list[bytes] = list(tokens)
        self._index = {t: k for k, t in enumerate(self.tokens)}
        self.loads = self.Q.sum(axis=0)
        self._clients: dict[str, tuple[bytes, float]] = \
            dict(clients) if clients else {}
        self.drift_limit = float(drift_limit)
        self.kkt_rtol = float(kkt_rtol)
        self.max_sweeps = int(max_sweeps)
        self._baseline_total = max(float(self.D.sum()), 1e-9)
        self._drift = 0.0
        self.stale = False
        self.events_applied = 0
        self.fallbacks = 0
        self._hoist_cost_scalars()

    def _hoist_cost_scalars(self) -> None:
        """Python-float views of the per-replica cost constants.

        The row subproblem's bisection runs in scalar Python (the
        eligible column count is single digits, so numpy dispatch on
        3-element temporaries dominated the loop); the cost constants
        are fixed for the state's lifetime — a price rotation rebuilds
        the whole state — so they are hoisted once here.
        """
        n = self.B.shape[0]
        u, a, b, g = self.u, self.alpha, self.beta, self.gamma
        self._uf = [float(u[j]) for j in range(n)]
        self._af = [float(a[j]) for j in range(n)]
        self._bgf = [float(b[j] * g[j]) for j in range(n)]
        self._em1f = [float(g[j]) - 1.0 for j in range(n)]
        # Constant-marginal columns (gamma == 1 or beta == 0) step from
        # 0 to full headroom as t crosses their level.
        self._constf = [bool(g[j] == 1.0 or b[j] == 0.0) for j in range(n)]
        self._levelf = [
            float(u[j] * (a[j] + (b[j] * g[j] if g[j] == 1.0 else 0.0)))
            for j in range(n)]
        self._expof = [1.0 / self._em1f[j] if self._em1f[j] > 0.0 else 1.0
                       for j in range(n)]

    def set_background(self, background: np.ndarray) -> None:
        """Adopt a new background load vector (other shards' column loads).

        Cheap by design — the sharded coordinator refreshes backgrounds
        once per exchange round and before every routed event.  Does not
        touch the allocation; the next rebalance/refine sees the offset.
        """
        bg = np.asarray(background, dtype=float)
        if bg.shape != self.B.shape:
            raise ValidationError("background has wrong length")
        self.background = np.maximum(bg, 0.0)

    # -- views ---------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        """K, the number of class rows currently tracked."""
        return len(self.tokens)

    @property
    def n_replicas(self) -> int:
        """N, the replica count the state is keyed to."""
        return self.B.shape[0]

    def row(self, token: bytes) -> np.ndarray:
        """The current allocation row of class ``token`` (copy)."""
        k = self._index.get(token)
        if k is None:
            raise ValidationError("unknown class token")
        return self.Q[k].copy()

    def rows_for(self, tokens: Sequence[bytes]) -> np.ndarray:
        """Class rows for ``tokens`` stacked in the given order."""
        return np.stack([self.row(t) for t in tokens]) \
            if tokens else np.zeros((0, self.n_replicas))

    def mu(self) -> np.ndarray:
        """Per-class multipliers recovered at the current operating point.

        Same convention as :func:`repro.core.warmstart.recover_mu`:
        ``mu_k = -min`` eligible marginal at the current column loads.
        """
        marg = self._marginal(self.loads)
        best = np.where(self.masks, marg[None, :], np.inf).min(
            axis=1, initial=np.inf)
        return np.where(np.isfinite(best), -best, 0.0)

    def mu_for(self, tokens: Sequence[bytes]) -> np.ndarray:
        """Recovered multipliers for ``tokens`` in the given order."""
        mu = self.mu()
        return np.array([mu[self._index[t]] for t in tokens]) \
            if tokens else np.zeros(0)

    def objective(self) -> float:
        """``E_g`` at the current column loads (Eq. 1)."""
        L = np.maximum(self.loads, 0.0)
        return float(np.sum(self.u * (self.alpha * L
                                      + self.beta * L ** self.gamma)))

    def class_data(self) -> ProblemData:
        """The current class-space instance as a :class:`ProblemData`."""
        return ProblemData(demands=self.D, capacities=self.B, prices=self.u,
                           alpha=self.alpha, beta=self.beta,
                           gamma=self.gamma, mask=self.masks)

    # -- the row subproblem --------------------------------------------------
    def _marginal(self, loads: np.ndarray) -> np.ndarray:
        """Marginal energy cost per replica at ``background + loads``."""
        L = np.maximum(loads, 0.0) + self.background
        return self.u * (self.alpha
                         + self.beta * self.gamma * L ** (self.gamma - 1.0))

    def _rebalance_row(self, k: int) -> bool:
        """Re-solve row ``k`` against the other rows' loads (KKT/bisection).

        Water-fills the class's demand over its eligible headroom so
        every loaded column sits at a common marginal level ``t`` —
        bisected with the kernels' iteration/tolerance constants.
        Returns False when the demand does not fit the eligible headroom
        (the caller falls back to a full solve).
        """
        m = self.masks[k]
        other = np.maximum(self.loads - self.Q[k], 0.0)
        D = float(self.D[k])
        if D <= 0.0:
            self.Q[k] = 0.0
            self.loads = other
            return True
        # Fill starts from other rows' loads plus the background; both
        # eat headroom and both raise the marginal the fill sees.
        start = other + self.background
        head = np.where(m, np.maximum(self.B - start, 0.0), 0.0)
        total_head = float(head.sum())
        if total_head < D * (1.0 - 1e-9):
            return False
        cols = np.nonzero(head > 0.0)[0]
        # Scalar bisection over the hoisted constants: inverting the
        # marginal m(L) = u*(alpha + beta*gamma*L^(g-1)) per eligible
        # column costs a handful of float ops, so Python floats beat
        # numpy temporaries by an order of magnitude at this size.
        uf, af, bgf = self._uf, self._af, self._bgf
        constf, levelf = self._constf, self._levelf
        expof, em1f = self._expof, self._em1f
        idx = [int(j) for j in cols]
        nc = len(idx)
        h = [float(head[j]) for j in idx]
        base = [float(start[j]) for j in idx]

        def fill_sum(t: float) -> float:
            """Total load admitted at water level ``t`` (clipped)."""
            s = 0.0
            for i in range(nc):
                j = idx[i]
                if constf[j]:
                    if t >= levelf[j]:
                        s += h[i]
                else:
                    r = (t / uf[j] - af[j]) / bgf[j]
                    if r > 0.0:
                        x = r ** expof[j] - base[i]
                        if x > 0.0:
                            s += x if x < h[i] else h[i]
            return s

        lo, hi = float("inf"), 0.0
        for i in range(nc):
            j = idx[i]
            if constf[j]:
                mlo = mhi = levelf[j]
            else:
                mlo = uf[j] * (af[j] + bgf[j] * base[i] ** em1f[j])
                mhi = uf[j] * (af[j] + bgf[j] * (base[i] + h[i]) ** em1f[j])
            lo = mlo if mlo < lo else lo
            hi = mhi if mhi > hi else hi
        hi = max(hi, lo) + 1e-12
        tol_t = 1e-13 * max(abs(hi), 1.0)
        d_tol = 1e-12 * D
        # Invariant: fill_sum(hi) >= D (all headroom admitted at hi),
        # fill_sum(lo) <= D; bisect t to the demand equality, stopping
        # early once the admitted total overshoots by <= d_tol — far
        # inside the kkt_rtol the refine loop certifies against.
        for _ in range(_BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            s = fill_sum(mid)
            if s < D:
                lo = mid
            else:
                hi = mid
                if s - D <= d_tol:
                    break
            if hi - lo < tol_t:
                break
        p = [0.0] * nc
        S = 0.0
        for i in range(nc):
            j = idx[i]
            if constf[j]:
                x = h[i] if hi >= levelf[j] else 0.0
            else:
                r = (hi / uf[j] - af[j]) / bgf[j]
                x = r ** expof[j] - base[i] if r > 0.0 else 0.0
                x = 0.0 if x < 0.0 else (x if x < h[i] else h[i])
            p[i] = x
            S += x
        if S <= 0.0:  # numerical corner: demand fits but level collapsed
            scale = D / total_head
            p = [hj * scale for hj in h]
        elif S != D:
            # fill(hi) admits >= D, so scaling down lands exactly on the
            # demand while staying inside every column's headroom.
            scale = D / S
            p = [x * scale for x in p]
        row = np.zeros(self.n_replicas)
        row[idx] = p
        self.Q[k] = row
        self.loads = other + row
        return True

    def _kkt_gaps(self) -> np.ndarray:
        """Per-class relative KKT gap at the current column loads.

        A class row is optimal when no mass can move from a loaded column
        to a cheaper column with headroom; its gap is that marginal
        difference divided by the marginal magnitude (one vectorized pass
        over the (K, N) state — no per-class numpy dispatch).
        """
        marg = self._marginal(self.loads)
        # A column is receivable only with meaningful headroom — counting
        # 1e-12 slivers would chase moves the rebalance cannot realize.
        headroom = self.B - self.background - self.loads \
            > 1e-9 * np.maximum(self.B, 1.0)
        scale = float(np.max(marg, initial=0.0)) or 1.0
        loaded = self.masks & (self.Q > _ACTIVE_EPS * self.D[:, None])
        room = self.masks & headroom[None, :]
        worst_loaded = np.where(loaded, marg[None, :], -np.inf).max(axis=1)
        best_room = np.where(room, marg[None, :], np.inf).min(axis=1)
        with np.errstate(invalid="ignore"):
            gaps = (worst_loaded - best_room) / scale
        skip = (self.D <= 0.0) | ~loaded.any(axis=1) | ~room.any(axis=1)
        gaps[skip] = 0.0
        return np.maximum(gaps, 0.0)

    def _kkt_residual(self) -> float:
        """Worst cross-row KKT violation, relative to the marginal scale."""
        return float(np.max(self._kkt_gaps(), initial=0.0))

    def kkt_residual(self) -> float:
        """Public view of the worst cross-row KKT gap (relative).

        The sharded coordinator folds this — evaluated against each
        shard's current background — into its global convergence
        residual.
        """
        return self._kkt_residual()

    def refine(self) -> tuple[bool, int]:
        """Gauss–Seidel sweeps over violating rows to the KKT residual bound.

        Each sweep rebalances only the rows whose KKT gap exceeds the
        tolerance — a row with zero gap is already optimal against the
        current loads, so re-solving it would be a no-op.  Returns
        ``(converged, sweeps_used)``; a False first element means the
        caller should fall back to a full solve (the state is left
        feasible — every row still sums to its demand — just not
        optimal to tolerance).
        """
        for sweep in range(self.max_sweeps):
            bad = np.flatnonzero(self._kkt_gaps() > self.kkt_rtol)
            if bad.size == 0:
                # Re-derive the loads from the rows: the incremental
                # `other + row` updates accumulate float drift over long
                # event streams.
                self.loads = self.Q.sum(axis=0)
                return True, sweep
            for k in bad:
                if not self._rebalance_row(int(k)):
                    return False, sweep + 1
        self.loads = self.Q.sum(axis=0)
        return self._kkt_residual() <= self.kkt_rtol, self.max_sweeps

    # -- client registry -----------------------------------------------------
    def registered(self, client: str) -> tuple[bytes, float] | None:
        """The (token, demand) registration of ``client``, or ``None``."""
        return self._clients.get(client)

    def register_client(self, client: str, token: bytes,
                        demand: float) -> None:
        """(Re)register ``client`` without touching demands or rows.

        Recovery plumbing for the sharded coordinator: when an event is
        absorbed through :meth:`force_target` instead of
        :meth:`apply_event`, the registry update the declined event
        skipped is replayed here.  ``token`` must already be a known
        class.
        """
        if token not in self._index:
            raise ValidationError("unknown class token")
        self._clients[client] = (token, float(demand))

    def deregister_client(self, client: str) -> None:
        """Forget ``client``'s registration (see :meth:`register_client`)."""
        if client not in self._clients:
            raise ValidationError(f"unknown client {client!r}")
        del self._clients[client]

    # -- class bookkeeping ---------------------------------------------------
    def _ensure_class(self, token: bytes,
                      eligibility: np.ndarray | None) -> int:
        """Row index of ``token``, appending a fresh class if unseen."""
        k = self._index.get(token)
        if k is not None:
            return k
        if eligibility is None:
            raise ValidationError("unknown class token needs an eligibility "
                                  "row to be added")
        row = np.asarray(eligibility, dtype=bool)
        if row.shape != (self.n_replicas,):
            raise ValidationError("eligibility row has wrong length")
        if row.tobytes() != token:
            raise ValidationError("eligibility row does not match its token")
        self.masks = np.vstack([self.masks, row[None, :]])
        self.D = np.append(self.D, 0.0)
        self.Q = np.vstack([self.Q, np.zeros((1, self.n_replicas))])
        self.tokens.append(token)
        k = len(self.tokens) - 1
        self._index[token] = k
        return k

    def extract_class(self, token: bytes) -> tuple[
            np.ndarray, float, np.ndarray, dict[str, tuple[bytes, float]]]:
        """Remove class ``token`` and hand it over for adoption elsewhere.

        The shard-migration primitive: returns ``(eligibility, demand,
        row, clients)`` — the class's mask row, demand, current
        allocation row, and the registered clients that belonged to it —
        and deletes the class here.  The class leaves *with* its load,
        so an extract/:meth:`install_class` pair conserves the aggregate
        column loads exactly and requires no re-solve.  The drift
        baseline re-anchors to the shrunken demand total.
        """
        k = self._index.get(token)
        if k is None:
            raise ValidationError("unknown class token")
        eligibility = self.masks[k].copy()
        demand = float(self.D[k])
        row = self.Q[k].copy()
        self.masks = np.delete(self.masks, k, axis=0)
        self.D = np.delete(self.D, k)
        self.Q = np.delete(self.Q, k, axis=0)
        self.tokens.pop(k)
        self._index = {t: i for i, t in enumerate(self.tokens)}
        self.loads = self.loads - row
        moved = {c: reg for c, reg in self._clients.items()
                 if reg[0] == token}
        for c in moved:
            del self._clients[c]
        self._baseline_total = max(float(self.D.sum()), 1e-9)
        return eligibility, demand, row, moved

    def install_class(self, token: bytes, eligibility: np.ndarray,
                      demand: float, row: np.ndarray,
                      clients: dict[str, tuple[bytes, float]] | None = None
                      ) -> int:
        """Adopt a class :meth:`extract_class` removed elsewhere; row index.

        The row arrives warm — it keeps the allocation it converged to
        in its previous home — so installs are load-neutral; the next
        refine or exchange round treats it like any other row.
        """
        if token in self._index:
            raise ValidationError("class token already present")
        elig = np.asarray(eligibility, dtype=bool)
        if elig.shape != (self.n_replicas,):
            raise ValidationError("eligibility row has wrong length")
        if elig.tobytes() != token:
            raise ValidationError("eligibility row does not match its token")
        r = np.asarray(row, dtype=float)
        if r.shape != (self.n_replicas,):
            raise ValidationError("allocation row has wrong length")
        r = np.where(elig, np.maximum(r, 0.0), 0.0)
        self.masks = np.vstack([self.masks, elig[None, :]])
        self.D = np.append(self.D, max(float(demand), 0.0))
        self.Q = np.vstack([self.Q, r[None, :]])
        self.tokens.append(token)
        k = len(self.tokens) - 1
        self._index[token] = k
        self.loads = self.loads + r
        for c, reg in (clients or {}).items():
            self._clients[c] = (token, float(reg[1]))
        self._baseline_total = max(float(self.D.sum()), 1e-9)
        return k

    def _fallback(self, reason: str) -> EventResult:
        self.stale = True
        self.fallbacks += 1
        return EventResult(ok=False, reason=reason)

    def _apply_class_delta(self, k: int, new_demand: float,
                           delta_abs: float) -> EventResult:
        self._drift += delta_abs
        if self._drift > self.drift_limit * self._baseline_total:
            return self._fallback("drift")
        self.D[k] = max(float(new_demand), 0.0)
        if not self._rebalance_row(k):
            return self._fallback("capacity")
        converged, sweeps = self.refine()
        if not converged:
            return self._fallback("convergence")
        self.events_applied += 1
        return EventResult(ok=True, events=1, sweeps=sweeps)

    # -- the event API --------------------------------------------------------
    def apply_event(
            self, event: "ClientArrival | ClientDeparture | DemandChange"
    ) -> EventResult:
        """Apply one client-granular event; O(sweeps * K * N).

        Maps the event to its eligibility class, adjusts only that class
        row (plus refinement sweeps), and recovers the operating point.
        A returned ``ok=False`` marks the state stale — run a full warm
        solve and rebuild.
        """
        if self.stale:
            return EventResult(ok=False, reason="stale")
        if isinstance(event, ClientArrival):
            if event.client in self._clients:
                raise ValidationError(
                    f"client {event.client!r} already registered")
            if event.demand < 0:
                raise ValidationError("demand must be nonnegative")
            row = np.asarray(event.eligibility, dtype=bool)
            token = row.tobytes()
            k = self._ensure_class(token, row)
            result = self._apply_class_delta(
                k, float(self.D[k]) + float(event.demand),
                float(event.demand))
            if result.ok:
                self._clients[event.client] = (token, float(event.demand))
            return result
        if isinstance(event, ClientDeparture):
            reg = self._clients.get(event.client)
            if reg is None:
                raise ValidationError(f"unknown client {event.client!r}")
            token, demand = reg
            k = self._index[token]
            result = self._apply_class_delta(
                k, float(self.D[k]) - demand, demand)
            if result.ok:
                del self._clients[event.client]
            return result
        if isinstance(event, DemandChange):
            reg = self._clients.get(event.client)
            if reg is None:
                raise ValidationError(f"unknown client {event.client!r}")
            if event.demand < 0:
                raise ValidationError("demand must be nonnegative")
            token, demand = reg
            k = self._index[token]
            result = self._apply_class_delta(
                k, float(self.D[k]) + float(event.demand) - demand,
                abs(float(event.demand) - demand))
            if result.ok:
                self._clients[event.client] = (token, float(event.demand))
            return result
        raise ValidationError(f"unknown event type {type(event).__name__}")

    def retarget(self, tokens: Sequence[bytes], masks: np.ndarray,
                 demands: np.ndarray) -> EventResult:
        """Move the state to a new per-class demand target in one call.

        The runtime's chunk-to-chunk transition: ``tokens``/``masks``/
        ``demands`` describe the next sub-batch's classes (a
        :class:`~repro.core.aggregate.ClassStructure` row-for-row).
        Classes absent from the target drain to zero; unseen classes are
        added.  Only classes whose demand actually changed are re-solved,
        so a single-client sub-batch touches one row.
        """
        if self.stale:
            return EventResult(ok=False, reason="stale")
        masks = np.asarray(masks, dtype=bool)
        demands = np.asarray(demands, dtype=float)
        if masks.shape != (len(tokens), self.n_replicas) \
                or demands.shape != (len(tokens),):
            raise ValidationError("retarget shapes do not match tokens")
        target = {t: float(demands[i]) for i, t in enumerate(tokens)}
        for i, t in enumerate(tokens):
            self._ensure_class(t, masks[i])
        changed = [k for k, t in enumerate(self.tokens)
                   if abs(target.get(t, 0.0) - float(self.D[k])) > 0.0]
        if not changed:
            return EventResult(ok=True, events=0, sweeps=0)
        delta = sum(abs(target.get(self.tokens[k], 0.0) - float(self.D[k]))
                    for k in changed)
        self._drift += delta
        if self._drift > self.drift_limit * self._baseline_total:
            return self._fallback("drift")
        # Drain shrinking classes first so growing ones see the headroom.
        changed.sort(key=lambda k: target.get(self.tokens[k], 0.0)
                     - float(self.D[k]))
        for k in changed:
            self.D[k] = target.get(self.tokens[k], 0.0)
            if not self._rebalance_row(k):
                return self._fallback("capacity")
        converged, sweeps = self.refine()
        if not converged:
            return self._fallback("convergence")
        # A converged refine certifies the state is at the target's
        # optimum (KKT residual within tolerance) — equivalent to a fresh
        # full solve — so the drift baseline restarts here.  The guard
        # above therefore bounds a *single* transition's magnitude; note
        # an ordinary chunk turnover (old classes drain, new ones fill)
        # costs about old+new total, so runtime callers need a limit
        # budgeting for >= 1x turnover.
        self._drift = 0.0
        self._baseline_total = max(float(self.D.sum()), 1e-9)
        self.events_applied += len(changed)
        return EventResult(ok=True, events=len(changed), sweeps=sweeps)

    def force_target(self, tokens: Sequence[bytes], masks: np.ndarray,
                     demands: np.ndarray) -> int:
        """Adopt a demand target unconditionally, clearing fallback state.

        The sharded coordinator's recovery path: when a shard declines a
        :meth:`retarget` (capacity/drift/convergence), the coordinator
        force-targets every shard and re-fills all rows with full
        dual-price exchange rounds instead of tearing the plane down.
        Unlike :meth:`retarget` this does **not** re-solve anything —
        rows may no longer sum to their demands afterwards, so the
        caller must run a full rebalance pass (a shard solve round)
        before reading the allocation.  Returns the number of class
        demands that changed.
        """
        masks = np.asarray(masks, dtype=bool)
        demands = np.asarray(demands, dtype=float)
        if masks.shape != (len(tokens), self.n_replicas) \
                or demands.shape != (len(tokens),):
            raise ValidationError("force_target shapes do not match tokens")
        target = {t: float(demands[i]) for i, t in enumerate(tokens)}
        for i, t in enumerate(tokens):
            self._ensure_class(t, masks[i])
        changed = 0
        for k, t in enumerate(self.tokens):
            new = max(target.get(t, 0.0), 0.0)
            if new != float(self.D[k]):
                changed += 1
            self.D[k] = new
        self.stale = False
        self._drift = 0.0
        self._baseline_total = max(float(self.D.sum()), 1e-9)
        return changed

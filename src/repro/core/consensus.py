"""Consensus weight matrices for CDPSM.

CDPSM's consensus step averages the replicas' solution estimates with
weights ``a`` (Table I / Algorithm 1, step 5: ``sum_n a_n = 1``).
Convergence of the Nedic-Ozdaglar-Parrilo scheme requires a doubly
stochastic weight matrix compatible with the communication graph; the
paper's EDR exchanges solutions among *all* replicas, i.e. uniform weights
on the complete graph.  Ring and Metropolis variants are provided for the
topology ablation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["uniform_weights", "ring_weights", "metropolis_weights",
           "is_doubly_stochastic"]


def uniform_weights(n: int) -> np.ndarray:
    """Complete-graph uniform averaging: ``W[i, j] = 1/n``."""
    if n < 1:
        raise ValidationError("need at least one replica")
    return np.full((n, n), 1.0 / n)


def ring_weights(n: int, self_weight: float = 0.5) -> np.ndarray:
    """Symmetric averaging on a ring: self + two neighbors.

    ``W[i, i] = self_weight``; each ring neighbor gets
    ``(1 - self_weight) / 2``.  Matches EDR's fault-tolerance ring when
    used as the communication graph.
    """
    if n < 1:
        raise ValidationError("need at least one replica")
    if not 0.0 < self_weight < 1.0:
        raise ValidationError("self_weight must lie in (0, 1)")
    if n == 1:
        return np.ones((1, 1))
    if n == 2:
        # Each node has a single (doubly counted) neighbor.
        w = 1.0 - self_weight
        return np.array([[self_weight, w], [w, self_weight]])
    W = np.zeros((n, n))
    side = (1.0 - self_weight) / 2.0
    for i in range(n):
        W[i, i] = self_weight
        W[i, (i - 1) % n] = side
        W[i, (i + 1) % n] = side
    return W


def metropolis_weights(adjacency: np.ndarray) -> np.ndarray:
    """Metropolis-Hastings weights for an undirected graph.

    ``W[i, j] = 1 / (1 + max(deg(i), deg(j)))`` for edges,
    ``W[i, i] = 1 - sum_j W[i, j]``.  Doubly stochastic for any
    connected undirected graph.
    """
    A = np.asarray(adjacency)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValidationError("adjacency must be square")
    A = A.astype(bool)
    if np.any(np.diag(A)):
        raise ValidationError("adjacency must have empty diagonal")
    if not np.array_equal(A, A.T):
        raise ValidationError("adjacency must be symmetric")
    n = A.shape[0]
    deg = A.sum(axis=1)
    W = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if A[i, j]:
                W[i, j] = W[j, i] = 1.0 / (1.0 + max(deg[i], deg[j]))
    for i in range(n):
        W[i, i] = 1.0 - W[i].sum()
    return W


def is_doubly_stochastic(W: np.ndarray, tol: float = 1e-9) -> bool:
    """True if ``W`` is nonnegative with unit row and column sums."""
    W = np.asarray(W, dtype=float)
    if W.ndim != 2 or W.shape[0] != W.shape[1]:
        return False
    if np.any(W < -tol):
        return False
    ones = np.ones(W.shape[0])
    return (np.allclose(W.sum(axis=0), ones, atol=tol)
            and np.allclose(W.sum(axis=1), ones, atol=tol))

"""The paper's contribution: the energy-aware replica-selection problem and
its two distributed solvers (CDPSM, LDDM), plus a centralized reference.

Quick start::

    from repro.core import ProblemData, ReplicaSelectionProblem, solve

    data = ProblemData.paper_defaults(
        demands=[40.0, 60.0], prices=[1.0, 8.0, 1.0])
    problem = ReplicaSelectionProblem(data)
    solution = solve(problem, algorithm="lddm")
    print(solution.allocation, solution.objective)

:func:`solve` dispatches to any algorithm (``"lddm"``, ``"cdpsm"``,
``"reference"``) with one keyword-only option set (``aggregate=``,
``warm_start=``, ``mu0=``, ``recorder=``, plus solver options); the
per-algorithm helpers ``solve_lddm`` / ``solve_cdpsm`` /
``solve_reference`` are thin wrappers with the same names.
"""

from repro.core.params import ProblemData, ReplicaParams
from repro.core.problem import ReplicaSelectionProblem
from repro.core.aggregate import (
    AggregatedProblem,
    ClassStructure,
    aggregate_problem,
    solve_aggregated,
)
from repro.core.model import (
    replica_loads,
    replica_energy,
    total_energy,
    energy_gradient,
)
from repro.core.projection import (
    project_simplex,
    project_capped_simplex,
    project_demands,
    project_local_set,
)
from repro.core.consensus import (
    uniform_weights,
    ring_weights,
    metropolis_weights,
    is_doubly_stochastic,
)
from repro.core.stepsize import ConstantStep, DiminishingStep, SqrtStep
from repro.core.solution import Solution
from repro.core.subproblem import solve_replica_subproblem
from repro.core.cdpsm import CdpsmSolver, solve_cdpsm
from repro.core.lddm import LddmSolver, solve_lddm
from repro.core.reference import solve_reference
from repro.core.api import ALGORITHMS, solve
from repro.core.warmstart import (
    AdaptiveBudget,
    WarmStartCache,
    WarmStartEntry,
    project_warm_start,
    recover_mu,
)
from repro.core.incremental import (
    ClientArrival,
    ClientDeparture,
    DemandChange,
    EventResult,
    IncrementalState,
)
from repro.core.shard import (
    ShardRound,
    SolveShard,
    partition_classes,
)

__all__ = [
    "ProblemData",
    "ReplicaParams",
    "ReplicaSelectionProblem",
    "AggregatedProblem",
    "ClassStructure",
    "aggregate_problem",
    "solve_aggregated",
    "replica_loads",
    "replica_energy",
    "total_energy",
    "energy_gradient",
    "project_simplex",
    "project_capped_simplex",
    "project_demands",
    "project_local_set",
    "uniform_weights",
    "ring_weights",
    "metropolis_weights",
    "is_doubly_stochastic",
    "ConstantStep",
    "DiminishingStep",
    "SqrtStep",
    "Solution",
    "solve_replica_subproblem",
    "CdpsmSolver",
    "solve_cdpsm",
    "LddmSolver",
    "solve_lddm",
    "solve_reference",
    "solve",
    "ALGORITHMS",
    "AdaptiveBudget",
    "WarmStartCache",
    "WarmStartEntry",
    "project_warm_start",
    "recover_mu",
    "ClientArrival",
    "ClientDeparture",
    "DemandChange",
    "EventResult",
    "IncrementalState",
    "ShardRound",
    "SolveShard",
    "partition_classes",
]

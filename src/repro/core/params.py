"""Problem parameters (the paper's Table I notation).

``ProblemData`` holds, for C clients and N replicas:

* ``R`` (C,)  — client traffic demands (``R_c``), in load units (MB/s);
* ``B`` (N,)  — replica bandwidth capacities (``B_n``);
* ``u`` (N,)  — unit electricity prices (``u_n``), cents/kWh;
* ``alpha`` (N,) — server energy weight (``alpha_n``);
* ``beta`` (N,)  — network-device energy weight (``beta_n``);
* ``gamma`` (N,) — network polynomial degree (``gamma_n``, >= 1);
* ``mask`` (C, N) bool — latency eligibility (``l_{c,n} <= T``).

The paper's SystemG calibration (Sec. IV-A-2) is ``alpha = 1``,
``beta = 0.01``, ``gamma = 3``, ``B = 100`` MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
)

__all__ = ["ReplicaParams", "ProblemData", "PAPER_ALPHA", "PAPER_BETA",
           "PAPER_GAMMA", "PAPER_BANDWIDTH", "PAPER_MAX_LATENCY"]

#: Paper calibration constants (Sec. IV-A-2).
PAPER_ALPHA = 1.0
PAPER_BETA = 0.01
PAPER_GAMMA = 3.0
PAPER_BANDWIDTH = 100.0       # MB/s Ethernet cap on SystemG
PAPER_MAX_LATENCY = 0.0018    # T = 1.8 ms


@dataclass(frozen=True)
class ReplicaParams:
    """Per-replica model parameters (one row of Table I)."""

    price: float           # u_n, cents/kWh
    bandwidth: float       # B_n, MB/s
    alpha: float = PAPER_ALPHA
    beta: float = PAPER_BETA
    gamma: float = PAPER_GAMMA

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ValidationError("price must be positive")
        if self.bandwidth <= 0:
            raise ValidationError("bandwidth must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValidationError("alpha/beta must be nonnegative")
        if self.gamma < 1:
            raise ValidationError("gamma must be >= 1 (convexity)")


class ProblemData:
    """Validated arrays describing one replica-selection instance."""

    def __init__(self, demands, capacities, prices, alpha, beta, gamma,
                 mask=None) -> None:
        self.R = check_nonnegative(demands, "demands").astype(float)
        if self.R.ndim != 1:
            raise ValidationError("demands must be a vector")
        self.B = check_positive(capacities, "capacities").astype(float)
        if self.B.ndim != 1:
            raise ValidationError("capacities must be a vector")
        n = self.B.shape[0]

        def _per_replica(x, name, validator):
            arr = validator(np.broadcast_to(np.asarray(x, dtype=float),
                                            (n,)).copy(), name)
            return arr

        self.u = _per_replica(prices, "prices", check_positive)
        self.alpha = _per_replica(alpha, "alpha", check_nonnegative)
        self.beta = _per_replica(beta, "beta", check_nonnegative)
        self.gamma = _per_replica(gamma, "gamma", check_finite)
        if np.any(self.gamma < 1):
            raise ValidationError("gamma must be >= 1 (convexity)")
        c = self.R.shape[0]
        if mask is None:
            self.mask = np.ones((c, n), dtype=bool)
        else:
            m = np.asarray(mask)
            if m.shape != (c, n):
                raise ValidationError(
                    f"mask must be shape ({c}, {n}), got {m.shape}")
            self.mask = m.astype(bool)
        for name, arr in (("prices", self.u), ("alpha", self.alpha),
                          ("beta", self.beta), ("gamma", self.gamma)):
            if arr.shape != (n,):
                raise ValidationError(f"{name} must have one entry per replica")

    # -- views -------------------------------------------------------------
    @property
    def n_clients(self) -> int:
        """C, the number of clients."""
        return self.R.shape[0]

    @property
    def n_replicas(self) -> int:
        """N, the number of replicas."""
        return self.B.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """(C, N) allocation-matrix shape."""
        return (self.n_clients, self.n_replicas)

    def replica(self, n: int) -> ReplicaParams:
        """Parameters of replica ``n`` as a :class:`ReplicaParams`."""
        return ReplicaParams(price=float(self.u[n]),
                             bandwidth=float(self.B[n]),
                             alpha=float(self.alpha[n]),
                             beta=float(self.beta[n]),
                             gamma=float(self.gamma[n]))

    # -- builders -----------------------------------------------------------
    @classmethod
    def paper_defaults(cls, demands: Sequence[float],
                       prices: Sequence[float],
                       bandwidth: float = PAPER_BANDWIDTH,
                       mask=None) -> "ProblemData":
        """Instance with the paper's alpha/beta/gamma calibration."""
        n = len(prices)
        return cls(demands=demands, capacities=np.full(n, float(bandwidth)),
                   prices=prices, alpha=PAPER_ALPHA, beta=PAPER_BETA,
                   gamma=PAPER_GAMMA, mask=mask)

    @classmethod
    def from_replicas(cls, replicas: Sequence[ReplicaParams], demands,
                      mask=None) -> "ProblemData":
        """Instance assembled from per-replica parameter records."""
        if not replicas:
            raise ValidationError("need at least one replica")
        return cls(
            demands=demands,
            capacities=[r.bandwidth for r in replicas],
            prices=[r.price for r in replicas],
            alpha=[r.alpha for r in replicas],
            beta=[r.beta for r in replicas],
            gamma=[r.gamma for r in replicas],
            mask=mask,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProblemData(C={self.n_clients}, N={self.n_replicas}, "
                f"total_demand={self.R.sum():g}, "
                f"total_capacity={self.B.sum():g})")

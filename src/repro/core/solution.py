"""Solution container shared by all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import ProblemData

__all__ = ["Solution"]


@dataclass
class Solution:
    """Result of one solver run.

    Attributes
    ----------
    allocation: (C, N) matrix ``P[c, n]`` of load assigned from client c
        to replica n.
    objective: ``E_g`` at the allocation.
    iterations: solver iterations performed.
    converged: whether the stopping tolerance was met within the budget.
    objective_history: ``E_g`` per iteration (Fig. 5's curves).
    residual_history: primal-feasibility residual per iteration.
    messages: control messages the distributed execution would exchange.
    comm_floats: total floats moved between agents (communication volume).
    method: solver tag ("cdpsm" / "lddm" / "reference" / baseline names).
    solve_time_s: wall-clock seconds the producing solve took (``None``
        when the producer did not time itself).
    warm_started: whether the solve was seeded from a prior solution
        (``None`` when not applicable).
    n_classes: eligibility-class count K of an aggregated solve
        (``None`` for direct solves).
    """

    allocation: np.ndarray
    objective: float
    iterations: int
    converged: bool
    objective_history: list[float] = field(default_factory=list)
    residual_history: list[float] = field(default_factory=list)
    messages: int = 0
    comm_floats: int = 0
    method: str = ""
    solve_time_s: float | None = None
    warm_started: bool | None = None
    n_classes: int | None = None

    @property
    def loads(self) -> np.ndarray:
        """Per-replica loads ``L_n``."""
        return self.allocation.sum(axis=0)

    def demand_residual(self, data: ProblemData) -> float:
        """Max absolute violation of the per-client demand equalities."""
        return float(np.max(np.abs(self.allocation.sum(axis=1) - data.R),
                            initial=0.0))

    def capacity_violation(self, data: ProblemData) -> float:
        """Max overshoot of any replica's bandwidth capacity (0 if none)."""
        return float(np.max(self.loads - data.B, initial=0.0))

    def mask_violation(self, data: ProblemData) -> float:
        """Total mass placed on latency-ineligible pairs."""
        return float(np.abs(self.allocation[~data.mask]).sum())

    def max_violation(self, data: ProblemData) -> float:
        """Worst constraint violation across all constraint families."""
        return max(self.demand_residual(data),
                   self.capacity_violation(data),
                   self.mask_violation(data),
                   float(-min(self.allocation.min(), 0.0)))

    def summary(self) -> str:
        """One-line human-readable result."""
        return (f"{self.method or 'solution'}: objective={self.objective:.6g} "
                f"iters={self.iterations} converged={self.converged} "
                f"messages={self.messages}")

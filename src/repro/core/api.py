"""`solve()`: the one-call entry point for every solver.

The per-algorithm helpers (:func:`~repro.core.lddm.solve_lddm`,
:func:`~repro.core.cdpsm.solve_cdpsm`,
:func:`~repro.core.reference.solve_reference`) are thin wrappers over
this facade, so every entry point shares one signature contract: the
problem and algorithm positionally, everything else keyword-only under
one set of names (``aggregate``, ``warm_start``, ``mu0``, ``recorder``,
plus algorithm-specific options).
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregate import solve_aggregated
from repro.core.cdpsm import CdpsmSolver
from repro.core.lddm import LddmSolver
from repro.core.problem import ReplicaSelectionProblem
from repro.core.solution import Solution
from repro.errors import ValidationError

__all__ = ["solve", "ALGORITHMS"]

#: Algorithms the facade dispatches to.
ALGORITHMS = ("lddm", "cdpsm", "reference")


def solve(problem: ReplicaSelectionProblem, algorithm: str = "lddm", *,
          aggregate: bool = False, warm_start: np.ndarray | None = None,
          mu0: np.ndarray | None = None, recorder=None,
          **options) -> Solution:
    """Solve a replica-selection instance; returns a :class:`Solution`.

    Parameters
    ----------
    problem: the instance to solve.
    algorithm: ``"lddm"`` (the paper's Algorithm 2, default), ``"cdpsm"``
        (Algorithm 1), or ``"reference"`` (the centralized scipy optimum).
    aggregate: solve the exact eligibility-class reduction (O(K*N) per
        iteration; see :mod:`repro.core.aggregate`).  Distributed
        algorithms only.
    warm_start: optional initial allocation.  Problem-shaped (C, N) for
        direct solves, class-space (K, N) when ``aggregate=True``.
    mu0: optional initial dual multipliers (LDDM only; one per solved
        row).
    recorder: optional :class:`~repro.obs.Recorder` capturing
        per-iteration samples and the final solve event.
    options: forwarded to the solver (``max_iter``, ``tol``, ``step``,
        ...; ``tol``/``max_iter`` for the reference solver).

    The dispatch adds nothing numerically: ``solve(p, "lddm", **o)``
    computes bit-identical output to ``LddmSolver(p, **o).solve()``.
    """
    if algorithm not in ALGORITHMS:
        raise ValidationError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    if mu0 is not None and algorithm != "lddm":
        raise ValidationError("mu0 applies to the lddm algorithm only")
    if algorithm == "reference":
        if aggregate:
            raise ValidationError(
                "the reference solver has no aggregated mode")
        from repro.core.reference import solve_reference

        return solve_reference(problem, warm_start=warm_start,
                               recorder=recorder, **options)
    if aggregate:
        return solve_aggregated(problem, method=algorithm,
                                initial=warm_start, mu0=mu0,
                                recorder=recorder, **options)
    if algorithm == "lddm":
        solver = LddmSolver(problem, recorder=recorder, **options)
        return solver.solve(warm_start, mu0=mu0)
    solver = CdpsmSolver(problem, recorder=recorder, **options)
    return solver.solve(warm_start)

"""Persistent shard workers: shared-memory geometry, delta-only rounds.

The original process mode rebuilt a ``ProcessPoolExecutor`` per solve
and re-pickled every shard's full payload — static cost constants,
masks, capacities *and* the allocation — on every exchange round.  Both
costs are pure overhead once the plane is long-lived: the geometry only
changes on events/migrations, and pool spin-up dwarfs a round's actual
arithmetic at class-space sizes.

This module keeps one worker pool alive across solves and splits a
shard's state into two shipments per geometry *version* (see
:attr:`repro.core.shard.SolveShard.version`):

* a **static block** — one pickle of the shard's tokens, demands,
  capacities, prices, cost constants and masks, written into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment exactly
  once per version; and
* a **state block** — a raw ``(K_s + 1, N)`` float64 segment holding
  the mutable allocation rows plus the column-load row, which the
  parent rewrites in place after adopting each round's result.

A round then ships only the true per-round delta — background loads,
damping and the current demand vector — plus the segment names; the
worker rebuilds (or reuses) its cached :class:`~repro.core.shard.
SolveShard`, reads the allocation from shared memory, runs the
identical ``solve_round`` arithmetic, and returns just the updated
``(K_s, N)`` rows.  The parent republishes its own ``Q`` and ``loads``
into the state block at the start of every round, so the worker starts
from bit-identical inputs to the serial path even after out-of-round
writes (retargets, absorbed events, warm seeds).  Shipping demands in
the delta is what lets a pure retarget keep the geometry cache warm:
only membership, mask or capacity changes bump the shard version and
force a static re-ship.

There is deliberately **no task -> worker affinity**: any worker can
pick up any shard because the shipments, not the worker, carry the
state.  A worker that has never seen (or has an outdated version of) a
shard pays one static unpickle; after that, rounds are delta-only no
matter how the executor schedules them.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.core.shard import ShardRound, SolveShard
from repro.util.cpus import resolve_workers

__all__ = ["ShardWorkerPool", "run_worker_round", "run_worker_rounds"]

#: Pickle-framing allowance counted per returned result (rows ship as
#: one ndarray plus a handful of scalars).
_RESULT_OVERHEAD = 96

#: Worker-process cache: shard id -> (version, SolveShard, state shm).
#: Lives in the worker interpreter; the parent never touches it.
_CACHE: dict[int, tuple[int, SolveShard, shared_memory.SharedMemory]] = {}


def _build_worker_shard(task: dict) -> tuple[SolveShard,
                                             shared_memory.SharedMemory]:
    """Attach the task's shipments and rebuild the shard (cache miss)."""
    static = shared_memory.SharedMemory(name=task["static_name"])
    try:
        geo = pickle.loads(bytes(static.buf[:task["static_size"]]))
    finally:
        static.close()
    shard = SolveShard(
        task["shard"], tokens=geo["tokens"], demands=geo["demands"],
        capacities=geo["capacities"], prices=geo["prices"],
        alpha=geo["alpha"], beta=geo["beta"], gamma=geo["gamma"],
        mask=geo["mask"], kkt_rtol=geo["kkt_rtol"],
        max_sweeps=geo["max_sweeps"])
    state_shm = shared_memory.SharedMemory(name=task["state_name"])
    return shard, state_shm


def run_worker_round(task: dict) -> tuple[int, np.ndarray, int, bool, bool]:
    """Persistent-pool worker: delta-only round against cached geometry.

    Rebuilds the shard only when the task's version differs from the
    cached one, copies the allocation + loads the parent published in
    the state block, and runs the same :meth:`~repro.core.shard.
    SolveShard.solve_round` code path as every other execution mode.
    """
    sid = int(task["shard"])
    cached = _CACHE.get(sid)
    if cached is None or cached[0] != task["version"]:
        if cached is not None:
            cached[2].close()
        shard, state_shm = _build_worker_shard(task)
        _CACHE[sid] = (int(task["version"]), shard, state_shm)
        cached = _CACHE[sid]
    _, shard, state_shm = cached
    st = shard.state
    rows, cols = int(task["rows"]), int(task["cols"])
    block = np.ndarray((rows + 1, cols), dtype=np.float64,
                       buffer=state_shm.buf)
    st.Q = block[:rows].copy()
    st.loads = block[rows].copy()
    st.D[:] = task["demands"]
    result = shard.solve_round(task["background"], task["damping"])
    return (sid, st.Q, result.sweeps, result.converged, result.fit)


def run_worker_rounds(tasks: list) -> list:
    """One worker's whole share of a round, in a single submission.

    Dispatching per shard costs one scheduling wakeup each; on small
    fleets that latency — not the row arithmetic — is the round's
    floor.  The pool therefore chunks a round's tasks into one batch
    per worker; the arithmetic and its ordering are unchanged (each
    task is the same :func:`run_worker_round`, and rounds are
    order-independent by construction).
    """
    return [run_worker_round(t) for t in tasks]


class _Shipment:
    """One shard version published to the workers (two shm segments)."""

    def __init__(self, shard: SolveShard) -> None:
        st = shard.state
        blob = pickle.dumps(shard.static_payload(),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self.version = shard.version
        self.rows, self.cols = st.Q.shape
        self.static_size = len(blob)
        self.static = shared_memory.SharedMemory(
            create=True, size=max(self.static_size, 1))
        self.static.buf[:self.static_size] = blob
        state_size = max((self.rows + 1) * self.cols * 8, 8)
        self.state_shm = shared_memory.SharedMemory(
            create=True, size=state_size)
        self.nbytes = self.static_size + state_size
        self._closed = False
        self.write_state(st)

    def write_state(self, st) -> None:
        """Publish the parent's current allocation rows + column loads."""
        block = np.ndarray((self.rows + 1, self.cols), dtype=np.float64,
                           buffer=self.state_shm.buf)
        block[:self.rows] = st.Q
        block[self.rows] = st.loads

    def close(self) -> None:
        """Unlink both segments (workers holding maps keep them alive)."""
        if self._closed:
            return
        self._closed = True
        for seg in (self.static, self.state_shm):
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):  # already gone at exit
                pass


class ShardWorkerPool:
    """A long-lived process pool plus the per-shard shm shipments.

    Owned by the :class:`~repro.edr.coordinator.ShardCoordinator` for
    its whole lifetime: the executor starts lazily on the first round
    and survives across solves and event storms; :meth:`close` tears
    down the workers and unlinks every shipment.  ``static_bytes`` /
    ``round_bytes`` account what actually crossed the process boundary
    — the bench gates pin that the per-round share is independent of
    how many rounds ran.
    """

    def __init__(self, *, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self.workers = 0
        self.static_bytes = 0
        self.round_bytes = 0
        self.rounds_shipped = 0
        self.reships = 0
        self._executor: ProcessPoolExecutor | None = None
        self._shipments: dict[int, _Shipment] = {}

    def _ensure_executor(self, n_shards: int) -> ProcessPoolExecutor:
        if self._executor is None:
            self.workers = resolve_workers(n_shards, self.max_workers)
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def run_round(self, shards: Sequence[SolveShard],
                  backgrounds: Sequence[np.ndarray],
                  damping: float) -> list[ShardRound]:
        """One Jacobi round across the fleet; adopts results in place."""
        executor = self._ensure_executor(len(shards))
        live = set()
        tasks = []
        for sh, bg in zip(shards, backgrounds):
            live.add(sh.shard_id)
            ship = self._shipments.get(sh.shard_id)
            if ship is None or ship.version != sh.version:
                if ship is not None:
                    ship.close()
                    self.reships += 1
                ship = _Shipment(sh)
                self._shipments[sh.shard_id] = ship
                self.static_bytes += ship.nbytes
            else:
                # Reused geometry: republish the parent's current rows
                # and loads so out-of-round writes (retargets, events,
                # warm seeds) are visible without a version bump.
                ship.write_state(sh.state)
            tasks.append({
                "shard": sh.shard_id, "version": ship.version,
                "static_name": ship.static.name,
                "static_size": ship.static_size,
                "state_name": ship.state_shm.name,
                "rows": ship.rows, "cols": ship.cols,
                "background": np.asarray(bg, dtype=float),
                "demands": np.asarray(sh.state.D, dtype=float),
                "damping": float(damping)})
        for sid in [s for s in self._shipments if s not in live]:
            self._shipments.pop(sid).close()
        self.round_bytes += sum(
            len(pickle.dumps(t, protocol=pickle.HIGHEST_PROTOCOL))
            for t in tasks)
        by_id = {sh.shard_id: sh for sh in shards}
        w = max(1, self.workers)
        chunks = [c for c in (tasks[i::w] for i in range(w)) if c]
        futures = [executor.submit(run_worker_rounds, c) for c in chunks]
        results = [r for fut in futures for r in fut.result()]
        out = []
        for sid, Q, sweeps, conv, fit in results:
            sh = by_id[sid]
            sh.adopt(Q)
            self.round_bytes += Q.nbytes + _RESULT_OVERHEAD
            out.append(ShardRound(sid, sh.state.loads.copy(), sweeps,
                                  conv, fit))
        self.rounds_shipped += 1
        return out

    def close(self) -> None:
        """Shut the workers down and unlink every shipment (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for ship in self._shipments.values():
            ship.close()
        self._shipments.clear()

    def __del__(self) -> None:  # safety net; close() is the contract
        try:
            self.close()
        except Exception:
            pass

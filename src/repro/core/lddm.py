"""Lagrangian dual decomposition method (Algorithm 2).

The per-client demand equalities ``h_c(P) = sum_n P[c, n] - R_c = 0`` are
dualized with multipliers ``mu_c`` held by the clients.  Each iteration:

1. every replica ``n`` solves its local subproblem (5) over its own
   column given the current ``mu`` (see :mod:`repro.core.subproblem`);
2. every client updates its multiplier along the dual gradient — the
   demand residual:  ``mu_c <- mu_c + d_k * (sum_n P[c, n] - R_c)``.

Communication per iteration is one solution message per (replica, client)
pair plus one ``mu`` message per (client, replica) pair — the paper's
``O(|C| * |N|)``, strictly cheaper than CDPSM's ``O(|C| * |N|^3)``.

Two documented stabilizations of the textbook method (DESIGN.md §5.2),
both default-on and both removable for the ablation bench:

* a proximal term ``(eps/2)*||p - p_prev||^2`` in the subproblem (the
  paper's exact subproblem is linear in the split across clients, so raw
  dual decomposition chatters between extreme points);
* ergodic (running-average) primal recovery.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.solution import Solution
from repro.core.stepsize import ConstantStep
from repro.core.subproblem import ReplicaSubproblem, solve_replica_subproblem
from repro.core import kernels, model
from repro.errors import ValidationError
from repro.obs import NULL_RECORDER

__all__ = ["LddmSolver", "solve_lddm", "default_lddm_parameters",
           "initial_mu"]


def default_lddm_parameters(data: ProblemData) -> tuple[float, float]:
    """Problem-scaled ``(epsilon, dual_step)``.

    ``epsilon`` makes the proximal curvature comparable to the marginal
    energy cost at the problem's *operating point* (total demand spread
    uniformly) over the demand scale — sizing it to full capacity instead
    over-stiffens small instances by orders of magnitude.  The dual
    gradient is ``N/epsilon``-Lipschitz, so a step of ``1.5*epsilon/N``
    is stable.
    """
    load_typ = float(data.R.sum()) / max(data.n_replicas, 1)
    load_typ = min(load_typ, float(data.B.max()))
    g_typ = float(np.max(data.u * (data.alpha + data.beta * data.gamma
                                   * load_typ ** (data.gamma - 1.0))))
    scale = float(max(data.R.max(initial=0.0), 1e-12))
    epsilon = max(g_typ, 1e-12) / scale
    dual_step = 1.0 * epsilon / max(data.n_replicas, 1)
    return epsilon, dual_step


def initial_mu(problem: ReplicaSelectionProblem) -> np.ndarray:
    """Cold-start ``mu_c``: minus the cheapest eligible marginal cost.

    At optimality ``mu_c = -dE/dP[c, n]`` for every replica carrying
    client c's load; the marginal at the uniform allocation is a good
    first guess and saves most of the dual travel.  Warm starts
    (:mod:`repro.core.warmstart`) fall back to this per client when no
    cached multiplier applies.
    """
    data = problem.data
    loads = problem.uniform_allocation().sum(axis=0)
    best = model.cheapest_eligible_marginal(data, loads)
    return np.where(np.isfinite(best), -best, 0.0)


class LddmSolver:
    """Synchronous matrix-form execution of Algorithm 2.

    ``batched=True`` (default) solves all replica columns in one
    vectorized KKT/bisection pass per iteration
    (:func:`repro.core.kernels.lddm_solve_columns`); the per-column
    scalar path is kept as the reference oracle.
    """

    method = "lddm"

    def __init__(self, problem: ReplicaSelectionProblem,
                 step=None, epsilon: float | None = None,
                 max_iter: int = 600, tol: float = 1e-4,
                 averaging: bool = True, exact_subproblem: bool = False,
                 track_objective: bool = True,
                 warm_start_mu: bool = True,
                 batched: bool = True,
                 recorder=None) -> None:
        self.problem = problem
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        data = problem.data
        eps_default, step_default = default_lddm_parameters(data)
        if epsilon is None:
            epsilon = eps_default
        if epsilon < 0:
            raise ValidationError("epsilon must be nonnegative")
        self.epsilon = float(epsilon)
        if step is None:
            # Dual gradient is (N/eps)-Lipschitz => step < 2*eps/N stable;
            # eps/N keeps a comfortable margin against limit cycles.
            eps_eff = self.epsilon if self.epsilon > 0 else eps_default
            step = ConstantStep(1.0 * eps_eff / max(data.n_replicas, 1))
        self.step = step
        if max_iter < 1:
            raise ValidationError("max_iter must be >= 1")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.averaging = bool(averaging)
        self.exact_subproblem = bool(exact_subproblem)
        self.track_objective = bool(track_objective)
        self.warm_start_mu = bool(warm_start_mu)
        self.batched = bool(batched)
        # Final dual state of the last iterations() run (cached by the
        # runtime's warm-start layer).
        self.mu_: np.ndarray | None = None
        self.converged_ = False

    # -- pieces -------------------------------------------------------------
    def _initial_mu(self) -> np.ndarray:
        """Cold-start multipliers (see :func:`initial_mu`)."""
        if not self.warm_start_mu:
            return np.zeros(self.problem.data.n_clients)
        return initial_mu(self.problem)

    def _solve_columns(self, mu: np.ndarray, prev: np.ndarray) -> np.ndarray:
        """One round of local subproblem solves (all replicas)."""
        data = self.problem.data
        epsilon = 0.0 if self.exact_subproblem else self.epsilon
        if self.batched:
            return kernels.lddm_solve_columns(data, mu, prev, epsilon)
        P = np.zeros(data.shape)
        for n in range(data.n_replicas):
            eligible = data.mask[:, n]
            if not eligible.any():
                continue
            sub = ReplicaSubproblem(
                price=float(data.u[n]), alpha=float(data.alpha[n]),
                beta=float(data.beta[n]), gamma=float(data.gamma[n]),
                bandwidth=float(data.B[n]), mu=mu[eligible],
                ref=prev[eligible, n], epsilon=epsilon)
            P[eligible, n] = solve_replica_subproblem(sub)
        return P

    # -- main loop -----------------------------------------------------------
    def iterations(self, initial: np.ndarray | None = None,
                   mu0: np.ndarray | None = None):
        """Generator over solver iterations (the runtime steps this).

        Yields ``(k, candidate, residual)`` after each iteration, where
        ``candidate`` is the current primal recovery (averaged if
        averaging is on) and ``residual`` is the max demand violation of
        the *raw* iterate.  The generator stops once the stopping rule is
        met or ``max_iter`` is reached.

        ``initial`` seeds the primal reference point and ``mu0`` the dual
        multipliers (both default to the cold start); together they form
        the cross-batch warm-start entry point used by the runtime.
        After the generator finishes, ``self.mu_`` holds the final
        multipliers and ``self.converged_`` whether the stopping rule
        fired — the state the runtime caches for the next batch.
        """
        problem = self.problem
        data = problem.data
        prev = problem.uniform_allocation() if initial is None \
            else np.asarray(initial, dtype=float)
        if prev.shape != data.shape:
            raise ValidationError("initial allocation shape mismatch")
        if mu0 is None:
            mu = self._initial_mu()
        else:
            mu = np.array(mu0, dtype=float, copy=True)
            if mu.shape != (data.n_clients,):
                raise ValidationError("mu0 must have one entry per client")
        self.mu_ = mu
        self.converged_ = False
        # Suffix averaging: restart the running mean at k = 1, 2, 4, 8, ...
        # so the recovered primal always averages (roughly) the last half
        # of the iterates — plain ergodic averaging would dilute the
        # solution with the uniform-ish burn-in forever.
        average = np.zeros(data.shape)
        avg_count = 0
        next_restart = 1
        tol_abs = self.tol * float(max(data.R.max(initial=0.0), 1.0))
        rec = self.recorder
        for k in range(self.max_iter):
            P = self._solve_columns(mu, prev)
            r = P.sum(axis=1) - data.R
            d_k = self.step(k)
            mu = mu + d_k * r
            self.mu_ = mu
            prev = P
            if k == next_restart:
                average = np.zeros(data.shape)
                avg_count = 0
                next_restart *= 2
            average = (average * avg_count + P) / (avg_count + 1)
            avg_count += 1
            candidate = average if self.averaging else P
            # Stop on the recovered primal's residual: the raw iterate can
            # limit-cycle around the optimum while its average settles.
            res_raw = float(np.max(np.abs(r), initial=0.0))
            res_cand = float(np.max(
                np.abs(candidate.sum(axis=1) - data.R), initial=0.0))
            res = min(res_raw, res_cand)
            if rec.enabled:
                rec.event("lddm.iteration", k=k, residual=res,
                          step=float(d_k),
                          mu_max=float(np.max(np.abs(mu), initial=0.0)))
            yield k, candidate, res
            if res < tol_abs and k >= 1:
                self.converged_ = True
                return

    def solve(self, initial: np.ndarray | None = None,
              mu0: np.ndarray | None = None) -> Solution:
        """Run Algorithm 2; returns the repaired (averaged) solution."""
        problem = self.problem
        problem.require_feasible()
        data = problem.data
        C, N = data.shape
        t_start = perf_counter()
        tol_abs = self.tol * float(max(data.R.max(initial=0.0), 1.0))
        rec = self.recorder
        history: list[float] = []
        residuals: list[float] = []
        messages = 0
        comm_floats = 0
        converged = False
        iterations = 0
        candidate = problem.uniform_allocation()
        pending: list[np.ndarray] = []

        def flush_history() -> None:
            if pending:
                base = len(history)
                values = kernels.objective_history(data, pending, sweeps=10)
                history.extend(values)
                if rec.enabled:
                    for j, v in enumerate(values):
                        rec.sample("solver.objective", v, k=base + j)
                pending.clear()

        for k, candidate, res in self.iterations(initial, mu0=mu0):
            iterations = k + 1
            messages += 2 * C * N
            comm_floats += 2 * C * N
            residuals.append(res)
            if self.track_objective:
                if self.batched:
                    # Repair lazily in stacked chunks (same curve values,
                    # without a full scalar repair every iteration).
                    pending.append(candidate)
                    if len(pending) >= 128:
                        flush_history()
                else:
                    value = problem.objective(
                        problem.repair(candidate, sweeps=10))
                    history.append(value)
                    if rec.enabled:
                        rec.sample("solver.objective", value, k=k)
            if res < tol_abs and k >= 1:
                converged = True
        flush_history()
        final = problem.repair(candidate)
        solution = Solution(
            allocation=final,
            objective=problem.objective(final),
            iterations=iterations,
            converged=converged,
            objective_history=history,
            residual_history=residuals,
            messages=messages,
            comm_floats=comm_floats,
            method=self.method,
            solve_time_s=perf_counter() - t_start,
            warm_started=initial is not None or mu0 is not None,
        )
        if rec.enabled:
            rec.event("solver.solve", method=self.method,
                      iterations=iterations, converged=converged,
                      objective=float(solution.objective),
                      messages=messages, comm_floats=comm_floats,
                      solve_time_s=solution.solve_time_s,
                      warm_started=solution.warm_started,
                      n_clients=C, n_replicas=N)
        return solution


def solve_lddm(problem: ReplicaSelectionProblem, *,
               aggregate: bool = False, warm_start: np.ndarray | None = None,
               mu0: np.ndarray | None = None, recorder=None,
               **kwargs) -> Solution:
    """One-call convenience wrapper: ``solve(problem, "lddm", ...)``.

    All options are keyword-only and named exactly as on
    :func:`repro.core.solve` (``aggregate``, ``warm_start``, ``mu0``,
    ``recorder``, plus any :class:`LddmSolver` option).  ``aggregate=True``
    solves the exact class-space reduction (one super-client per distinct
    eligibility row; O(K*N) per iteration) and disaggregates the result —
    see :mod:`repro.core.aggregate`.
    """
    from repro.core.api import solve

    return solve(problem, "lddm", aggregate=aggregate,
                 warm_start=warm_start, mu0=mu0, recorder=recorder,
                 **kwargs)

"""The replica-selection problem instance (Sec. III-A, problem (2)).

Bundles :class:`~repro.core.params.ProblemData` with feasibility
certification (bipartite max-flow over the eligibility mask) and common
helpers the solvers share (initial points, objective/gradient, violation
reports).
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.core import model
from repro.core.params import ProblemData
from repro.errors import InfeasibleProblemError, ValidationError

__all__ = ["ReplicaSelectionProblem"]

_FLOW_SCALE = 10 ** 6  # max-flow on integers scaled from float loads


class ReplicaSelectionProblem:
    """One instance of the energy-aware replica-selection problem."""

    def __init__(self, data: ProblemData) -> None:
        self.data = data

    # -- feasibility -------------------------------------------------------
    def feasibility_report(self) -> dict:
        """Certify feasibility by max-flow on the class-replica bipartite graph.

        Clients with identical eligibility rows are merged into one source
        node whose capacity is their summed demand — merging sources with
        identical adjacency preserves the max-flow value, so the
        certificate is exact while the graph has at most ``2^N`` client
        nodes regardless of the client count.  Source -> class k with
        capacity ``sum R_c``; class -> replica for every eligible pair
        (unbounded); replica n -> sink with capacity ``B_n``.  The
        instance is feasible iff max-flow equals total demand.
        """
        data = self.data
        orphans = np.nonzero((data.R > 0) & ~data.mask.any(axis=1))[0].tolist()
        patterns, inverse = np.unique(data.mask, axis=0, return_inverse=True)
        class_demand = np.bincount(inverse.reshape(-1), weights=data.R,
                                   minlength=patterns.shape[0])
        g = nx.DiGraph()
        for k in range(patterns.shape[0]):
            g.add_edge("source", ("class", k),
                       capacity=int(round(class_demand[k] * _FLOW_SCALE)))
            for n in np.nonzero(patterns[k])[0]:
                g.add_edge(("class", k), ("replica", int(n)))  # uncapacitated
        for n in range(data.n_replicas):
            g.add_edge(("replica", n), "sink",
                       capacity=int(round(data.B[n] * _FLOW_SCALE)))
        total = int(round(float(data.R.sum()) * _FLOW_SCALE))
        if total == 0:
            flow = 0
        else:
            flow, _ = nx.maximum_flow(g, "source", "sink")
        feasible = (flow >= total - data.n_clients) and not orphans
        return {
            "feasible": bool(feasible),
            "max_flow": flow / _FLOW_SCALE,
            "total_demand": float(data.R.sum()),
            "orphan_clients": orphans,
            "slack": flow / _FLOW_SCALE - float(data.R.sum()),
        }

    def is_feasible(self) -> bool:
        """True iff a feasible allocation exists."""
        return self.feasibility_report()["feasible"]

    def require_feasible(self) -> None:
        """Raise :class:`InfeasibleProblemError` with a diagnosis if infeasible."""
        report = self.feasibility_report()
        if report["feasible"]:
            return
        if report["orphan_clients"]:
            raise InfeasibleProblemError(
                f"clients {report['orphan_clients']} have positive demand "
                f"but no latency-eligible replica")
        raise InfeasibleProblemError(
            f"total demand {report['total_demand']:g} exceeds reachable "
            f"capacity (max-flow {report['max_flow']:g})")

    # -- helpers shared by solvers -------------------------------------------
    def uniform_allocation(self) -> np.ndarray:
        """Demand spread evenly over each client's eligible replicas.

        Satisfies demand equalities and the mask; may violate capacity
        (solvers project it into their local sets before use).
        """
        data = self.data
        counts = data.mask.sum(axis=1)
        orphaned = (counts == 0) & (data.R > 0)
        if orphaned.any():
            raise InfeasibleProblemError(
                f"client {int(np.nonzero(orphaned)[0][0])} has no "
                f"eligible replica")
        share = np.divide(data.R, counts, out=np.zeros(data.n_clients),
                          where=counts > 0)
        return np.where(data.mask, share[:, None], 0.0)

    def aggregated(self):
        """Class-space reduction of this instance (exact; see
        :mod:`repro.core.aggregate`).

        Returns an :class:`~repro.core.aggregate.AggregatedProblem` whose
        ``problem`` has one super-client per distinct eligibility row;
        solving it and expanding costs O(K*N) per iteration instead of
        O(C*N).
        """
        from repro.core.aggregate import aggregate_problem

        return aggregate_problem(self)

    def objective(self, allocation: np.ndarray) -> float:
        """``E_g`` at an allocation."""
        return model.total_energy(self.data, allocation)

    def gradient(self, allocation: np.ndarray) -> np.ndarray:
        """Gradient of ``E_g`` (masked)."""
        return model.energy_gradient(self.data, allocation)

    def violation(self, allocation: np.ndarray) -> float:
        """Worst constraint violation of an allocation."""
        P = np.asarray(allocation, dtype=float)
        if P.shape != self.data.shape:
            raise ValidationError("allocation shape mismatch")
        demand = float(np.max(np.abs(P.sum(axis=1) - self.data.R),
                              initial=0.0))
        capacity = float(np.max(P.sum(axis=0) - self.data.B, initial=0.0))
        mask = float(np.abs(P[~self.data.mask]).sum())
        negativity = float(-min(P.min(initial=0.0), 0.0))
        return max(demand, capacity, mask, negativity)

    def repair(self, allocation: np.ndarray, sweeps: int = 500,
               tol: float = 1e-10) -> np.ndarray:
        """Round an approximate solution to a (near-)feasible allocation.

        Alternates exact row-demand projection with proportional column
        scaling onto the capacity caps, ending on the demand projection so
        client demands are met exactly.  Any residual capacity overshoot
        is reported by :meth:`violation` (tests bound it).  The sweep
        budget is sized for tight masked instances, where the
        alternation's geometric rate can be slow — the loop exits as
        soon as no column is over capacity, so easy instances never pay
        for it.
        """
        from repro.core.projection import project_demands

        data = self.data
        x = np.asarray(allocation, dtype=float)
        if x.shape != data.shape:
            raise ValidationError("allocation shape mismatch")
        x = project_demands(x, data.R, data.mask)
        for _ in range(sweeps):
            loads = x.sum(axis=0)
            over = loads > data.B * (1 + tol)
            if not over.any():
                break
            scale = np.where(over, data.B / np.maximum(loads, 1e-300), 1.0)
            x = project_demands(x * scale, data.R, data.mask)
        return x

    def lower_bound_loads(self) -> np.ndarray:
        """Price-greedy fractional relaxation: route all demand to replicas
        in order of marginal cost at zero load, ignoring the mask.

        Used as a sanity lower-bound check in tests (it relaxes latency
        constraints, so any feasible solution costs at least as much when
        the mask is all-True and cannot be cheaper than the relaxation).
        """
        data = self.data
        remaining = float(data.R.sum())
        loads = np.zeros(data.n_replicas)
        base_cost = data.u * data.alpha  # marginal at zero load
        for n in np.argsort(base_cost):
            take = min(remaining, float(data.B[n]))
            loads[n] = take
            remaining -= take
            if remaining <= 0:
                break
        return loads

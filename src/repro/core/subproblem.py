"""LDDM's per-replica local subproblem (paper problem (5)).

Replica ``n`` solves, over its own column ``p = P[:, n]`` restricted to
eligible clients:

    minimize  u*(alpha*s + beta*s**gamma) + mu . p  [+ (eps/2)*||p - ref||^2]
    s.t.      p >= 0,  s = sum(p) <= B

where ``mu`` are the clients' dual prices.  The paper's exact subproblem
(``eps = 0``) is *linear* in how the admitted load ``s`` is split across
clients, so its minimizers are extreme points (all mass on the cheapest
``mu``); the proximal term (``eps > 0``, default) restores strict
convexity — a standard stabilization for dual decomposition — and is
solved exactly here by a KKT reduction to one-dimensional bisection.

Both paths are exact (verified against scipy in the tests).

This module is the *scalar reference oracle* for the batched column
kernels in :mod:`repro.core.kernels`; the bisection tolerance is kept
tight enough (1e-15 relative) that scalar and batched runs pin the same
root to machine precision even when summation order differs, which is
what lets the property tests demand 1e-9 agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["ReplicaSubproblem", "solve_replica_subproblem"]

_BISECT_TOL = 1e-15
_BISECT_ITERS = 200


@dataclass(frozen=True)
class ReplicaSubproblem:
    """Inputs of one local solve (all per one replica)."""

    price: float          # u_n
    alpha: float
    beta: float
    gamma: float
    bandwidth: float      # B_n
    mu: np.ndarray        # dual prices of the *eligible* clients
    ref: np.ndarray | None = None   # proximal center (eligible clients)
    epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.price <= 0 or self.bandwidth <= 0:
            raise ValidationError("price and bandwidth must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValidationError("alpha/beta must be nonnegative")
        if self.gamma < 1:
            raise ValidationError("gamma must be >= 1")
        if self.epsilon < 0:
            raise ValidationError("epsilon must be nonnegative")
        mu = np.asarray(self.mu, dtype=float)
        if mu.ndim != 1:
            raise ValidationError("mu must be a vector")
        object.__setattr__(self, "mu", mu)
        if self.ref is not None:
            ref = np.asarray(self.ref, dtype=float)
            if ref.shape != mu.shape:
                raise ValidationError("ref must match mu in shape")
            object.__setattr__(self, "ref", ref)


def _marginal(sub: ReplicaSubproblem, s: float) -> float:
    """d/ds of the energy term: ``u*(alpha + beta*gamma*s**(gamma-1))``."""
    if sub.gamma == 1.0:
        powered = 1.0
    elif s <= 0.0:
        powered = 0.0
    else:
        powered = s ** (sub.gamma - 1.0)
    return sub.price * (sub.alpha + sub.beta * sub.gamma * powered)


def _solve_exact(sub: ReplicaSubproblem) -> np.ndarray:
    """The paper's eps=0 subproblem: closed form.

    For fixed total ``s`` the linear term is minimized by sending all of
    ``s`` to the clients with the smallest ``mu`` (ties split evenly);
    the optimal ``s`` then minimizes the 1-D convex
    ``u*(alpha*s + beta*s**gamma) + mu_min*s`` over ``[0, B]``.
    """
    mu = sub.mu
    if mu.size == 0:
        return np.zeros(0)
    mu_min = float(mu.min())
    u, a, b, g, B = sub.price, sub.alpha, sub.beta, sub.gamma, sub.bandwidth
    # h'(s) = u*alpha + u*beta*gamma*s**(g-1) + mu_min
    base = u * a + mu_min
    if g == 1.0 or b == 0.0:
        slope = base + (u * b * g if g == 1.0 else 0.0)
        s_star = B if slope < 0 else 0.0
    elif base >= 0:
        s_star = 0.0
    else:
        s_star = min(B, (-base / (u * b * g)) ** (1.0 / (g - 1.0)))
    out = np.zeros_like(mu)
    ties = np.isclose(mu, mu_min, rtol=0, atol=1e-12)
    out[ties] = s_star / int(ties.sum())
    return out


def _solve_proximal(sub: ReplicaSubproblem) -> np.ndarray:
    """The eps>0 subproblem, exact via nested bisection.

    KKT gives ``p_c = max(0, ref_c - (mu_c + t)/eps)`` with
    ``t = u*(alpha + beta*gamma*s**(gamma-1)) + nu`` and ``nu >= 0``
    complementary to the capacity constraint.
    """
    mu = sub.mu
    if mu.size == 0:
        return np.zeros(0)
    eps = sub.epsilon
    ref = sub.ref if sub.ref is not None else np.zeros_like(mu)
    if ref.shape != mu.shape:
        raise ValidationError("ref must match mu in shape")

    def p_of_t(t: float) -> np.ndarray:
        return np.maximum(0.0, ref - (mu + t) / eps)

    def S(t: float) -> float:
        return float(p_of_t(t).sum())

    def t_of_s(s: float, nu: float = 0.0) -> float:
        return _marginal(sub, s) + nu

    # --- Phase 1: capacity ignored (nu = 0) -------------------------------
    s_hi = S(t_of_s(0.0))
    if s_hi <= 0.0:
        return np.zeros_like(mu)
    lo, hi = 0.0, s_hi

    def g_fn(s: float) -> float:
        return S(t_of_s(s)) - s

    # g is strictly decreasing, g(0) >= 0, g(s_hi) <= 0: bisect.
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if g_fn(mid) > 0:
            lo = mid
        else:
            hi = mid
        if hi - lo < _BISECT_TOL * max(1.0, s_hi):
            break
    s_star = 0.5 * (lo + hi)
    if s_star <= sub.bandwidth + 1e-12:
        return p_of_t(t_of_s(s_star))

    # --- Phase 2: capacity binds (s = B, find nu >= 0) ---------------------
    B = sub.bandwidth

    def h_fn(nu: float) -> float:
        return S(t_of_s(B, nu)) - B

    nu_hi = 1.0
    while h_fn(nu_hi) > 0:
        nu_hi *= 2.0
        if nu_hi > 1e18:  # pragma: no cover - defensive
            break
    lo, hi = 0.0, nu_hi
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if h_fn(mid) > 0:
            lo = mid
        else:
            hi = mid
        if hi - lo < _BISECT_TOL * max(1.0, nu_hi):
            break
    nu = 0.5 * (lo + hi)
    p = p_of_t(t_of_s(B, nu))
    # Snap the total exactly onto the capacity.
    total = p.sum()
    if total > 0:
        p *= B / total
    return p


def solve_replica_subproblem(sub: ReplicaSubproblem) -> np.ndarray:
    """Solve one local subproblem exactly; returns the eligible-client column."""
    if sub.epsilon == 0.0:
        return _solve_exact(sub)
    return _solve_proximal(sub)

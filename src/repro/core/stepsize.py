"""Step-size schedules for the iterative solvers.

The paper uses *constant* step sizes for both algorithms "to guarantee the
fairness of the comparison" (end of Sec. III-D); diminishing schedules
(required for exact CDPSM convergence in theory) are provided for the
ablation benchmark.
"""

from __future__ import annotations

from repro.errors import ValidationError

__all__ = ["ConstantStep", "DiminishingStep", "SqrtStep"]


class ConstantStep:
    """``d_k = d0`` — the paper's choice."""

    def __init__(self, d0: float) -> None:
        if d0 <= 0:
            raise ValidationError("step size must be positive")
        self.d0 = float(d0)

    def __call__(self, k: int) -> float:
        """Step size at iteration ``k`` (0-based)."""
        return self.d0

    def __repr__(self) -> str:
        return f"ConstantStep({self.d0:g})"


class DiminishingStep:
    """``d_k = d0 / (k + 1)`` — classic subgradient schedule."""

    def __init__(self, d0: float) -> None:
        if d0 <= 0:
            raise ValidationError("step size must be positive")
        self.d0 = float(d0)

    def __call__(self, k: int) -> float:
        """Step size at iteration ``k`` (0-based)."""
        if k < 0:
            raise ValidationError("iteration index must be nonnegative")
        return self.d0 / (k + 1)

    def __repr__(self) -> str:
        return f"DiminishingStep({self.d0:g})"


class SqrtStep:
    """``d_k = d0 / sqrt(k + 1)`` — slower decay, often faster in practice."""

    def __init__(self, d0: float) -> None:
        if d0 <= 0:
            raise ValidationError("step size must be positive")
        self.d0 = float(d0)

    def __call__(self, k: int) -> float:
        """Step size at iteration ``k`` (0-based)."""
        if k < 0:
            raise ValidationError("iteration index must be nonnegative")
        return self.d0 / float((k + 1) ** 0.5)

    def __repr__(self) -> str:
        return f"SqrtStep({self.d0:g})"

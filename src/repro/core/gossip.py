"""Gossip (asynchronous pairwise) variant of CDPSM — an extension.

The consensus theory EDR builds on (Nedic-Ozdaglar-Parrilo) covers
*time-varying* communication graphs; the paper instantiates it with a
synchronous all-pairs exchange (``O(|C||N|^3)`` volume per iteration).
This module instantiates the same theory with randomized gossip: each
iteration one random replica pair averages its estimates and takes local
projected-gradient steps — two messages per iteration instead of
``N*(N-1)``.  Many more iterations are needed, but the *communication
volume* to a given solution quality can be far lower, which matters in
exactly the wide-area settings EDR targets.
"""

from __future__ import annotations

import numpy as np

from repro.core import model
from repro.core.cdpsm import default_cdpsm_step
from repro.core.problem import ReplicaSelectionProblem
from repro.core.projection import project_local_set
from repro.core.solution import Solution
from repro.core.stepsize import ConstantStep
from repro.errors import ValidationError

__all__ = ["GossipCdpsmSolver", "solve_gossip_cdpsm"]


class GossipCdpsmSolver:
    """Randomized-gossip execution of the CDPSM update.

    Parameters
    ----------
    problem: the instance to solve.
    rng: randomness source for pair selection (seeded by callers).
    step: step-size schedule; defaults to the problem-scaled constant.
    max_iter: gossip rounds (each touches one pair).
    tol: stop when the replicas' estimates agree to ``tol * max(R)`` and
        the last sweep's updates were below it too.
    dykstra_iter: inner projection iterations.
    """

    method = "gossip_cdpsm"

    def __init__(self, problem: ReplicaSelectionProblem,
                 rng: np.random.Generator,
                 step=None, max_iter: int = 4000, tol: float = 1e-4,
                 dykstra_iter: int = 60) -> None:
        if problem.data.n_replicas < 2:
            raise ValidationError("gossip needs at least two replicas")
        self.problem = problem
        self.rng = rng
        self.step = step if step is not None else ConstantStep(
            default_cdpsm_step(problem.data))
        if max_iter < 1:
            raise ValidationError("max_iter must be >= 1")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.dykstra_iter = int(dykstra_iter)

    def iterations(self, initial: np.ndarray | None = None):
        """Generator over gossip rounds; yields ``(k, mean, disagreement)``."""
        problem = self.problem
        data = problem.data
        N = data.n_replicas
        base = problem.uniform_allocation() if initial is None \
            else np.asarray(initial, dtype=float)
        X = np.stack([
            project_local_set(base, data.R, data.mask, i, float(data.B[i]),
                              max_iter=self.dykstra_iter)
            for i in range(N)
        ])
        tol_abs = self.tol * float(max(data.R.max(initial=0.0), 1.0))
        for k in range(self.max_iter):
            i, j = self.rng.choice(N, size=2, replace=False)
            avg = 0.5 * (X[i] + X[j])
            d_k = self.step(k)
            for agent in (int(i), int(j)):
                marginal = model.load_marginal_cost(
                    data, avg.sum(axis=0))[agent]
                stepped = avg.copy()
                stepped[:, agent] -= d_k * marginal * data.mask[:, agent]
                X[agent] = project_local_set(
                    stepped, data.R, data.mask, agent,
                    float(data.B[agent]), max_iter=self.dykstra_iter)
            mean = X.mean(axis=0)
            disagreement = float(np.max(np.abs(X - mean)))
            yield k, mean, disagreement
            if disagreement < tol_abs and k >= 2 * N:
                return

    def solve(self, initial: np.ndarray | None = None) -> Solution:
        """Run gossip to convergence; returns the repaired mean solution."""
        problem = self.problem
        problem.require_feasible()
        data = problem.data
        C, N = data.shape
        tol_abs = self.tol * float(max(data.R.max(initial=0.0), 1.0))
        residuals: list[float] = []
        messages = 0
        comm_floats = 0
        iterations = 0
        converged = False
        mean = problem.uniform_allocation()
        for k, mean, disagreement in self.iterations(initial):
            iterations = k + 1
            messages += 2              # the pair exchanges estimates
            comm_floats += 2 * C * N
            residuals.append(disagreement)
            if disagreement < tol_abs and k >= 2 * N:
                converged = True
        final = problem.repair(mean)
        return Solution(
            allocation=final,
            objective=problem.objective(final),
            iterations=iterations,
            converged=converged,
            residual_history=residuals,
            messages=messages,
            comm_floats=comm_floats,
            method=self.method,
        )


def solve_gossip_cdpsm(problem: ReplicaSelectionProblem,
                       rng: np.random.Generator, **kwargs) -> Solution:
    """One-call convenience wrapper around :class:`GossipCdpsmSolver`."""
    return GossipCdpsmSolver(problem, rng, **kwargs).solve()

"""Centralized reference solver.

Solves problem (2) with scipy (SLSQP, falling back to trust-constr) over
the latency-eligible variables only.  This is *not* part of EDR — a
centralized coordinator is exactly what the paper argues against — but it
provides the ground-truth optimum the distributed solvers are verified
against, and the ideal objective value for convergence plots.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
from scipy import optimize

from repro.core import model
from repro.core.problem import ReplicaSelectionProblem
from repro.core.solution import Solution
from repro.errors import ConvergenceError, ValidationError

__all__ = ["solve_reference"]


def solve_reference(problem: ReplicaSelectionProblem, *,
                    x0: np.ndarray | None = None,
                    tol: float = 1e-9, max_iter: int = 500,
                    warm_start: np.ndarray | None = None,
                    recorder=None) -> Solution:
    """Solve the instance centrally; returns a :class:`Solution`.

    ``warm_start`` is the facade-standard spelling of the initial point
    (``x0`` is the historical alias; passing both is an error).  Raises
    :class:`~repro.errors.InfeasibleProblemError` if the instance is
    infeasible and :class:`~repro.errors.ConvergenceError` if both scipy
    methods fail.
    """
    if warm_start is not None:
        if x0 is not None:
            raise ValidationError("pass warm_start or x0, not both")
        x0 = warm_start
    t_start = perf_counter()
    problem.require_feasible()
    data = problem.data
    mask = data.mask
    idx = np.nonzero(mask.ravel())[0]  # eligible entries, row-major

    def unpack(x: np.ndarray) -> np.ndarray:
        P = np.zeros(data.shape)
        P.ravel()[idx] = x
        return P

    def fun(x: np.ndarray) -> float:
        return model.total_energy(data, unpack(x))

    def jac(x: np.ndarray) -> np.ndarray:
        return model.energy_gradient(data, unpack(x)).ravel()[idx]

    # Row (client) index and column (replica) index of each variable.
    rows = idx // data.n_replicas
    cols = idx % data.n_replicas

    A_eq = np.zeros((data.n_clients, idx.size))
    A_eq[rows, np.arange(idx.size)] = 1.0
    A_cap = np.zeros((data.n_replicas, idx.size))
    A_cap[cols, np.arange(idx.size)] = 1.0

    if x0 is None:
        P0 = problem.uniform_allocation()
        # Pull capacity violations inside the box before handing to scipy.
        loads = P0.sum(axis=0)
        over = loads > data.B
        if over.any():
            scale = np.where(over, data.B / np.maximum(loads, 1e-300), 1.0)
            P0 = P0 * scale  # no longer demand-exact; SLSQP restores it
        x_init = P0.ravel()[idx]
    else:
        x_init = np.asarray(x0, dtype=float).ravel()[idx]

    constraints = [
        {"type": "eq", "fun": lambda x: A_eq @ x - data.R,
         "jac": lambda x: A_eq},
        {"type": "ineq", "fun": lambda x: data.B - A_cap @ x,
         "jac": lambda x: -A_cap},
    ]
    bounds = [(0.0, None)] * idx.size
    result = optimize.minimize(
        fun, x_init, jac=jac, bounds=bounds, constraints=constraints,
        method="SLSQP", options={"maxiter": max_iter, "ftol": tol})
    if not result.success or _violation(problem, unpack(result.x)) > 1e-5:
        lincon = [
            optimize.LinearConstraint(A_eq, data.R, data.R),
            optimize.LinearConstraint(A_cap, -np.inf, data.B),
        ]
        result = optimize.minimize(
            fun, x_init, jac=jac, bounds=bounds, constraints=lincon,
            method="trust-constr",
            options={"maxiter": max(1000, 4 * max_iter), "gtol": 1e-10,
                     "xtol": 1e-12})
        if not result.success and _violation(problem, unpack(result.x)) > 1e-4:
            raise ConvergenceError(
                f"reference solver failed: {result.message}",
                iterations=int(getattr(result, "nit", 0)))
    P = unpack(np.maximum(result.x, 0.0))
    solution = Solution(
        allocation=P,
        objective=model.total_energy(data, P),
        iterations=int(getattr(result, "nit", 0)),
        converged=True,
        method="reference",
        solve_time_s=perf_counter() - t_start,
        warm_started=x0 is not None,
    )
    if recorder is not None and recorder.enabled:
        recorder.event("solver.solve", method="reference",
                       iterations=solution.iterations, converged=True,
                       objective=float(solution.objective),
                       solve_time_s=solution.solve_time_s,
                       warm_started=solution.warm_started,
                       n_clients=data.n_clients, n_replicas=data.n_replicas)
    return solution


def _violation(problem: ReplicaSelectionProblem, P: np.ndarray) -> float:
    return problem.violation(P)

"""Service-layer error surface.

The service package raises the same exception hierarchy as the rest of
the library (:mod:`repro.errors`); this module re-exports the subset a
service caller needs so ``from repro.service.errors import ServiceError``
works without knowing the package layout.
"""

from __future__ import annotations

from repro.errors import (
    ReproError,
    ServiceError,
    ValidationError,
    VersionMismatchError,
    WireFormatError,
)

__all__ = [
    "ReproError",
    "ServiceError",
    "ValidationError",
    "VersionMismatchError",
    "WireFormatError",
]

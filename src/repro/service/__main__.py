"""``python -m repro.service`` — run a control-plane server.

Binds the versioned JSON endpoints (``/v1/solve``, ``/v1/events``,
``/v1/membership``, ``/v1/agents/*``, ``/v1/health``) and the
``/metrics`` Prometheus scrape on one address and serves until
interrupted.
"""

from __future__ import annotations

import argparse
import sys

from repro.edr.coordinator import ShardingConfig
from repro.edr.system import FaultConfig, SolverOptions
from repro.service.plane import ServiceConfig
from repro.service.server import ControlPlaneServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the EDR control plane over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port, 0 = pick free (default: %(default)s)")
    parser.add_argument("--hb-interval", type=float, default=0.05,
                        help="heartbeat cadence handed to agents, seconds")
    parser.add_argument("--hb-timeout", type=float, default=0.25,
                        help="heartbeat age after which an agent is dead")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard the event plane across N shards "
                             "(0 = single incremental state)")
    parser.add_argument("--shard-mode", default="serial",
                        choices=("serial", "thread", "process"),
                        help="shard execution mode (default: %(default)s)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    sharding = None
    if args.shards > 0:
        sharding = ShardingConfig(n_shards=args.shards, mode=args.shard_mode)
    config = ServiceConfig(
        host=args.host, port=args.port,
        solver=SolverOptions(sharding=sharding),
        faults=FaultConfig(hb_interval=args.hb_interval,
                           hb_timeout=args.hb_timeout))
    server = ControlPlaneServer(config)
    print(f"repro control plane listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

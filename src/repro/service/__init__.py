"""The control-plane service: a real API boundary over the EDR runtime.

Three pieces, one contract:

* :class:`~repro.service.plane.ControlPlane` — the transport-agnostic
  protocol (solve / events / membership / register / heartbeat /
  health / metrics), with :class:`~repro.service.plane.
  InProcessControlPlane` as the library-path implementation;
* :class:`~repro.service.server.ControlPlaneServer` /
  :func:`~repro.service.server.serve` — the stdlib HTTP server exposing
  the versioned ``/v1/*`` JSON endpoints plus ``/metrics``;
* :class:`~repro.service.client.EDRClient` /
  :func:`~repro.service.client.connect` — the SDK speaking the same
  wire models over HTTP, and :class:`~repro.service.agent.ReplicaAgent`
  — a replica process that registers and heartbeats.

Quickstart::

    import repro

    server = repro.serve()
    client = repro.connect(server.url)
    resp = client.solve(demands=[40.0, 60.0], prices=[1.0, 8.0, 1.0])
    server.close()

Or from a shell: ``python -m repro.service --port 8080``.
"""

from repro.service.agent import ReplicaAgent
from repro.service.client import EDRClient, connect
from repro.service.errors import ServiceError
from repro.service.plane import (
    ControlPlane,
    InProcessControlPlane,
    ServiceConfig,
)
from repro.service.schemas import ENDPOINTS, Endpoint
from repro.service.server import ControlPlaneServer, serve

__all__ = [
    "ControlPlane",
    "InProcessControlPlane",
    "ServiceConfig",
    "ControlPlaneServer",
    "serve",
    "EDRClient",
    "connect",
    "ReplicaAgent",
    "ServiceError",
    "ENDPOINTS",
    "Endpoint",
]

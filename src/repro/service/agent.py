"""``ReplicaAgent``: a replica-side process that joins the control plane.

The agent registers over HTTP, adopts the heartbeat cadence the server
hands back in its :class:`~repro.edr.messages.RegisterResponse` (it
never hard-codes ``hb_interval``/``hb_timeout`` — the server's
:class:`~repro.edr.system.FaultConfig` is the single source of truth),
and then heartbeats from a daemon thread until stopped.  The server's
failure detector marks the agent dead when its heartbeat age exceeds
``hb_timeout`` — exactly the ring-liveness contract of the simulated
runtime, lifted onto a real transport.
"""

from __future__ import annotations

import threading

from repro.errors import ServiceError
from repro.service.client import EDRClient

__all__ = ["ReplicaAgent"]


class ReplicaAgent:
    """Registers with a control plane and keeps itself alive.

    ``client`` is an :class:`~repro.service.client.EDRClient` or a base
    URL.  Use as a context manager, or call :meth:`start` / :meth:`stop`
    explicitly::

        with ReplicaAgent(server.url, "replica-0", capacity_mbps=100) as a:
            ...  # heartbeating in the background
    """

    def __init__(self, client: EDRClient | str, name: str, *,
                 capacity_mbps: float | None = None) -> None:
        if isinstance(client, str):
            client = EDRClient(client)
        self.client = client
        self.name = name
        self.capacity_mbps = capacity_mbps
        #: Cadence adopted from the server at registration (never local).
        self.hb_interval: float | None = None
        self.hb_timeout: float | None = None
        self.beats_sent = 0
        self.last_error: Exception | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        """Whether the heartbeat thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ReplicaAgent":
        """Register, adopt the server's cadence, start heartbeating."""
        if self.running:
            return self
        ack = self.client.register(self.name,
                                   capacity_mbps=self.capacity_mbps)
        self.hb_interval = float(ack.hb_interval)
        self.hb_timeout = float(ack.hb_timeout)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-agent-{self.name}", daemon=True)
        self._thread.start()
        return self

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.hb_interval):
            try:
                ack = self.client.heartbeat(self.name, seq=self.beats_sent)
                self.beats_sent += 1
                if not ack.known:
                    # The server restarted (or expired us): re-register
                    # and re-adopt whatever cadence it now dictates.
                    renewed = self.client.register(
                        self.name, capacity_mbps=self.capacity_mbps)
                    self.hb_interval = float(renewed.hb_interval)
                    self.hb_timeout = float(renewed.hb_timeout)
            except ServiceError as exc:
                # Transient transport failure: remember it, keep beating.
                self.last_error = exc

    def stop(self) -> None:
        """Stop heartbeating (the server will expire us); idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ReplicaAgent":
        return self.start()

    def __exit__(self, *_exc) -> bool:
        self.stop()
        return False

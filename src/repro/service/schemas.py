"""The versioned endpoint table: one source of truth for server and client.

Every HTTP endpoint of the control-plane service is declared here as an
:class:`Endpoint` — method, path, request model, response model.  The
server routes incoming requests by looking the path up in
:data:`ENDPOINTS`; the client builds its calls from the same table, so
the two sides cannot drift apart.  The wire models themselves live in
:mod:`repro.edr.messages` (they are shared with the in-process control
plane) and are re-exported here for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edr.messages import (
    MODEL_TYPES,
    WIRE_VERSION,
    ErrorResponse,
    EventRequest,
    EventResponse,
    HealthResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    MembershipResponse,
    RegisterRequest,
    RegisterResponse,
    SolveRequest,
    SolveResponse,
    WireEvent,
    WireModel,
    parse_message,
)

__all__ = [
    "Endpoint",
    "ENDPOINTS",
    "endpoint_for",
    "WIRE_VERSION",
    "WireModel",
    "SolveRequest",
    "SolveResponse",
    "WireEvent",
    "EventRequest",
    "EventResponse",
    "MembershipResponse",
    "RegisterRequest",
    "RegisterResponse",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "HealthResponse",
    "ErrorResponse",
    "MODEL_TYPES",
    "parse_message",
]


@dataclass(frozen=True)
class Endpoint:
    """One HTTP endpoint of the control-plane service.

    ``request`` is ``None`` for body-less GETs; ``response`` is ``None``
    for non-JSON endpoints (``/metrics`` returns Prometheus text).
    ``plane_method`` names the :class:`~repro.service.plane.ControlPlane`
    method the server dispatches to.
    """

    method: str
    path: str
    request: type | None
    response: type | None
    plane_method: str


#: Every endpoint the service exposes, keyed by path.
ENDPOINTS: dict[str, Endpoint] = {
    e.path: e
    for e in (
        Endpoint("POST", "/v1/solve", SolveRequest, SolveResponse, "solve"),
        Endpoint("POST", "/v1/events", EventRequest, EventResponse, "events"),
        Endpoint("GET", "/v1/membership", None, MembershipResponse,
                 "membership"),
        Endpoint("POST", "/v1/agents/register", RegisterRequest,
                 RegisterResponse, "register"),
        Endpoint("POST", "/v1/agents/heartbeat", HeartbeatRequest,
                 HeartbeatResponse, "heartbeat"),
        Endpoint("GET", "/v1/health", None, HealthResponse, "health"),
        Endpoint("GET", "/metrics", None, None, "metrics_text"),
    )
}


def endpoint_for(path: str) -> Endpoint | None:
    """The :class:`Endpoint` serving ``path``, or ``None`` if unrouted."""
    return ENDPOINTS.get(path)

"""The transport-agnostic control plane behind every service endpoint.

:class:`ControlPlane` is the protocol both backends implement:

* :class:`InProcessControlPlane` — the library path.  Solves run through
  :func:`repro.core.solve`, churn events route to an
  :class:`~repro.core.incremental.IncrementalState` (or a
  :class:`~repro.edr.coordinator.ShardCoordinator` when sharding is
  configured), membership is a server-side failure detector fed by agent
  heartbeats.
* :class:`repro.service.client.EDRClient` — the HTTP path.  Same
  methods, same wire models, transport is ``urllib`` instead of a
  function call.

Because both sides exchange the :mod:`repro.edr.messages` models and
JSON round-trips floats exactly (``repr``-based), an allocation computed
through HTTP is bit-identical to the in-process one — the parity the CI
service smoke asserts at 1e-9.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.aggregate import ClassStructure
from repro.core.api import ALGORITHMS, solve as core_solve
from repro.core.incremental import ClientArrival, ClientDeparture, \
    DemandChange, IncrementalState
from repro.core.params import (
    PAPER_ALPHA,
    PAPER_BETA,
    PAPER_GAMMA,
    PAPER_BANDWIDTH,
    ProblemData,
)
from repro.core.problem import ReplicaSelectionProblem
from repro.core.warmstart import recover_mu
from repro.edr.coordinator import ShardCoordinator
from repro.edr.messages import (
    WIRE_VERSION,
    EventRequest,
    EventResponse,
    HealthResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    MembershipResponse,
    RegisterRequest,
    RegisterResponse,
    SolveRequest,
    SolveResponse,
)
from repro.edr.system import FaultConfig, SolverOptions
from repro.errors import ValidationError
from repro.obs import TraceRecorder
from repro.obs.export import to_prometheus_text

__all__ = ["ServiceConfig", "ControlPlane", "InProcessControlPlane"]


@dataclass
class ServiceConfig:
    """Configuration of one control-plane service instance.

    Reuses the runtime's composable sub-configs: ``solver`` supplies the
    sharding/incremental policy for the event plane, ``faults`` the
    heartbeat cadence the failure detector enforces (and hands to agents
    at registration — agents never hard-code timeouts).
    """

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = pick a free port
    solver: SolverOptions = field(default_factory=SolverOptions)
    faults: FaultConfig = field(default_factory=FaultConfig)


@runtime_checkable
class ControlPlane(Protocol):
    """What a control plane does, regardless of transport.

    The server dispatches each endpoint to the method named in
    :data:`repro.service.schemas.ENDPOINTS`; the client SDK implements
    the same surface over HTTP, so callers can swap
    ``InProcessControlPlane()`` for ``connect(url)`` without touching
    call sites.
    """

    def solve(self, request: SolveRequest) -> SolveResponse: ...

    def events(self, request: EventRequest) -> EventResponse: ...

    def membership(self) -> MembershipResponse: ...

    def register(self, request: RegisterRequest) -> RegisterResponse: ...

    def heartbeat(self, request: HeartbeatRequest) -> HeartbeatResponse: ...

    def health(self) -> HealthResponse: ...

    def metrics_text(self) -> str: ...

    def close(self) -> None: ...


class InProcessControlPlane:
    """The function-call backend of :class:`ControlPlane`.

    Thread-safe (the HTTP server handles requests concurrently); all
    state mutation happens under one lock.  ``clock`` is injectable for
    failure-detector tests.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 recorder: TraceRecorder | None = None,
                 clock=time.monotonic) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self._clock = clock
        self._lock = threading.RLock()
        self._closed = False
        # -- event plane (populated by a solve that names clients) ----------
        self._state: IncrementalState | None = None
        self._coordinator: ShardCoordinator | None = None
        self._tokens: list[bytes] = []
        self._masks: dict[bytes, np.ndarray] = {}
        self._registry: dict[str, tuple[bytes, float]] = {}
        self._cost: dict[str, np.ndarray] = {}
        # -- membership (agent registry + failure detector) -----------------
        self._agents: dict[str, dict] = {}

    # -- solve ---------------------------------------------------------------
    def solve(self, request: SolveRequest) -> SolveResponse:
        """Solve one instance; optionally arm the event plane.

        When ``request.clients`` names the demand rows, the converged
        class-space allocation seeds an incremental state (or a sharded
        coordinator, per the service's :class:`SolverOptions`) so a
        follow-up ``/v1/events`` stream can be absorbed without
        re-solving from scratch.
        """
        data = self._problem_data(request)
        problem = ReplicaSelectionProblem(data)
        algorithm = request.algorithm
        if algorithm not in ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
        aggregate = bool(request.aggregate) and algorithm != "reference"
        clients = request.clients
        if clients is not None:
            if len(clients) != data.n_clients:
                raise ValidationError(
                    "clients must name every demand row exactly once")
            if len(set(clients)) != len(clients):
                raise ValidationError("client names must be unique")
        with self._lock:
            self._check_open()
            self.recorder.count("service.requests", endpoint="solve")
            solution = core_solve(problem, algorithm, aggregate=aggregate,
                                  recorder=self.recorder,
                                  **dict(request.options))
            duals = recover_mu(problem, solution.allocation)
            if clients is not None:
                self._arm_event_plane(data, solution.allocation,
                                      list(clients))
            return SolveResponse(
                allocation=solution.allocation.tolist(),
                objective=float(solution.objective),
                iterations=int(solution.iterations),
                converged=bool(solution.converged),
                loads=solution.loads.tolist(),
                duals=duals.tolist(),
                method=solution.method,
                solve_time_s=solution.solve_time_s,
                warm_started=solution.warm_started,
                n_classes=solution.n_classes,
                clients=list(clients) if clients is not None else None,
            )

    def _problem_data(self, request: SolveRequest) -> ProblemData:
        """Materialize a :class:`ProblemData` from a wire request."""
        prices = np.asarray(request.prices, dtype=float)
        n = prices.shape[0]
        if request.capacities is not None:
            capacities = np.asarray(request.capacities, dtype=float)
        else:
            capacities = np.full(n, PAPER_BANDWIDTH)
        return ProblemData(
            demands=request.demands,
            capacities=capacities,
            prices=prices,
            alpha=request.alpha if request.alpha is not None else PAPER_ALPHA,
            beta=request.beta if request.beta is not None else PAPER_BETA,
            gamma=request.gamma if request.gamma is not None else PAPER_GAMMA,
            mask=request.mask,
        )

    def _arm_event_plane(self, data: ProblemData, allocation: np.ndarray,
                         clients: list[str]) -> None:
        """Seed the incremental/sharded plane from a converged solve."""
        self._teardown_event_plane()
        structure = ClassStructure.from_mask(data.mask, data.R)
        tokens = list(structure.keys)
        reduced = structure.reduce_data(data)
        rows = structure.reduce_rows(allocation)
        registry = {
            name: (tokens[int(structure.class_of_client[i])],
                   float(data.R[i]))
            for i, name in enumerate(clients)
        }
        self._tokens = tokens
        self._masks = {t: structure.masks[k].copy()
                       for k, t in enumerate(tokens)}
        self._registry = registry
        self._cost = {"capacities": data.B.copy(), "prices": data.u.copy(),
                      "alpha": data.alpha.copy(), "beta": data.beta.copy(),
                      "gamma": data.gamma.copy()}
        opts = self.config.solver
        if opts.sharding is not None:
            self._coordinator = ShardCoordinator(
                reduced, tokens, opts.sharding, clients=dict(registry),
                recorder=self.recorder)
            self._coordinator.solve()
        else:
            self._state = IncrementalState(
                reduced, tokens, rows, clients=dict(registry),
                drift_limit=opts.incremental_drift_limit)

    def _teardown_event_plane(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
        self._coordinator = None
        self._state = None
        self._tokens = []
        self._masks = {}
        self._registry = {}
        self._cost = {}

    # -- events --------------------------------------------------------------
    def events(self, request: EventRequest) -> EventResponse:
        """Apply a churn stream to the armed event plane, in order."""
        with self._lock:
            self._check_open()
            self.recorder.count("service.requests", endpoint="events")
            if self._state is None and self._coordinator is None:
                raise ValidationError(
                    "no event plane armed; POST /v1/solve with clients "
                    "first")
            applied = 0
            resolves = 0
            sweeps = 0
            reasons: dict[str, int] = {}
            for wire_event in request.events:
                event = wire_event.to_core()
                self._validate_event(event)
                if self._coordinator is not None:
                    routed = self._coordinator.apply_event(event)
                    sweeps += routed.sweeps
                    reason = getattr(routed, "fallback_reason", None)
                    if reason:
                        resolves += 1
                        reasons[reason] = reasons.get(reason, 0) + 1
                else:
                    result = self._state.apply_event(event)
                    sweeps += result.sweeps
                    if not result.ok:
                        resolves += 1
                        reasons[result.reason] = \
                            reasons.get(result.reason, 0) + 1
                applied += 1
                self._absorb_into_registry(event)
                if self._state is not None and self._state.stale:
                    self._full_resolve()
            return self._event_snapshot(applied, resolves, sweeps, reasons)

    def _validate_event(self, event) -> None:
        if isinstance(event, ClientArrival):
            if event.client in self._registry:
                raise ValidationError(
                    f"client {event.client!r} already registered")
            if len(event.eligibility) != len(self._cost["prices"]):
                raise ValidationError("eligibility row has wrong length")
        elif event.client not in self._registry:
            raise ValidationError(f"unknown client {event.client!r}")

    def _absorb_into_registry(self, event) -> None:
        """Mirror one validated event into the plane-owned registry."""
        if isinstance(event, ClientArrival):
            row = np.asarray(event.eligibility, dtype=bool)
            token = row.tobytes()
            if token not in self._masks:
                self._masks[token] = row.copy()
                self._tokens.append(token)
            self._registry[event.client] = (token, float(event.demand))
        elif isinstance(event, ClientDeparture):
            del self._registry[event.client]
        elif isinstance(event, DemandChange):
            token, _ = self._registry[event.client]
            self._registry[event.client] = (token, float(event.demand))

    def _class_demands(self) -> np.ndarray:
        """Per-class demand totals from the plane-owned registry."""
        totals = {t: 0.0 for t in self._tokens}
        for token, demand in self._registry.values():
            totals[token] += demand
        return np.array([totals[t] for t in self._tokens])

    def _full_resolve(self) -> None:
        """Warm full re-solve after an incremental decline (the fallback).

        Rebuilds the class-space instance from the registry, warm-starts
        from the stale state's rows, and re-arms a fresh
        :class:`IncrementalState`.
        """
        tokens = list(self._tokens)
        masks = np.vstack([self._masks[t] for t in tokens])
        demands = self._class_demands()
        data = ProblemData(demands=demands,
                           capacities=self._cost["capacities"],
                           prices=self._cost["prices"],
                           alpha=self._cost["alpha"],
                           beta=self._cost["beta"],
                           gamma=self._cost["gamma"], mask=masks)
        warm = np.zeros(data.shape)
        stale = self._state
        for k, token in enumerate(tokens):
            if stale is not None and token in stale._index:
                warm[k] = stale.row(token)
        solution = core_solve(ReplicaSelectionProblem(data), "lddm",
                              warm_start=np.where(masks, warm, 0.0),
                              recorder=self.recorder)
        self._state = IncrementalState(
            data, tokens, solution.allocation, clients=dict(self._registry),
            drift_limit=self.config.solver.incremental_drift_limit)
        self.recorder.count("service.resolves")

    def _event_snapshot(self, applied: int, resolves: int, sweeps: int,
                        reasons: dict[str, int]) -> EventResponse:
        """Post-stream state: objective, loads, per-client allocation."""
        if self._coordinator is not None:
            self._coordinator.refresh_loads()
            loads = np.asarray(self._coordinator.loads, dtype=float)
            objective = self._coordinator.objective()
            rows = self._coordinator.rows_for(self._tokens)
        else:
            loads = self._state.loads.copy()
            objective = self._state.objective()
            rows = self._state.rows_for(self._tokens)
        index = {t: k for k, t in enumerate(self._tokens)}
        class_demand = self._class_demands()
        clients = sorted(self._registry)
        allocation = np.zeros((len(clients), loads.shape[0]))
        for i, name in enumerate(clients):
            token, demand = self._registry[name]
            k = index[token]
            if class_demand[k] > 0.0:
                allocation[i] = rows[k] * (demand / class_demand[k])
        return EventResponse(
            applied=applied, resolves=resolves, sweeps=sweeps,
            objective=float(objective), loads=loads.tolist(),
            clients=clients, allocation=allocation.tolist(),
            fallback_reasons=reasons,
        )

    # -- membership ----------------------------------------------------------
    def register(self, request: RegisterRequest) -> RegisterResponse:
        """Admit an agent; the response dictates its heartbeat cadence."""
        if not request.agent:
            raise ValidationError("agent name must be non-empty")
        faults = self.config.faults
        with self._lock:
            self._check_open()
            self.recorder.count("service.requests", endpoint="register")
            self._agents[request.agent] = {
                "registered_at": self._clock(),
                "last_heartbeat": self._clock(),
                "capacity_mbps": request.capacity_mbps,
                "beats": 0,
            }
            self.recorder.event("service.register", agent=request.agent)
            return RegisterResponse(
                agent=request.agent,
                hb_interval=faults.hb_interval,
                hb_timeout=faults.hb_timeout,
                replicas=sorted(self._agents),
            )

    def heartbeat(self, request: HeartbeatRequest) -> HeartbeatResponse:
        """Record a liveness probe; unknown agents are told to register."""
        with self._lock:
            self._check_open()
            self.recorder.count("service.requests", endpoint="heartbeat")
            entry = self._agents.get(request.agent)
            if entry is None:
                return HeartbeatResponse(agent=request.agent, known=False)
            entry["last_heartbeat"] = self._clock()
            entry["beats"] += 1
            self.recorder.count("service.heartbeats", agent=request.agent)
            return HeartbeatResponse(agent=request.agent, known=True)

    def membership(self) -> MembershipResponse:
        """Registered agents, with liveness judged by heartbeat age."""
        faults = self.config.faults
        with self._lock:
            self._check_open()
            self.recorder.count("service.requests", endpoint="membership")
            now = self._clock()
            ages = {name: now - entry["last_heartbeat"]
                    for name, entry in self._agents.items()}
            live = sorted(name for name, age in ages.items()
                          if age <= faults.hb_timeout)
            return MembershipResponse(
                replicas=sorted(self._agents), live=live,
                heartbeat_age_s={k: float(v)
                                 for k, v in sorted(ages.items())},
                hb_interval=faults.hb_interval,
                hb_timeout=faults.hb_timeout,
            )

    # -- misc ----------------------------------------------------------------
    def health(self) -> HealthResponse:
        """Liveness + version negotiation data."""
        import repro

        return HealthResponse(ok=not self._closed,
                              version=repro.__version__,
                              wire_version=WIRE_VERSION)

    def metrics_text(self) -> str:
        """Live Prometheus text exposition of the plane's recorder."""
        with self._lock:
            return to_prometheus_text(self.recorder)

    def close(self) -> None:
        """Release the event plane (worker pools included); idempotent."""
        with self._lock:
            if self._closed:
                return
            self._teardown_event_plane()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("control plane is closed")

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "InProcessControlPlane":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

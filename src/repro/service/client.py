"""``EDRClient``: the HTTP implementation of the control-plane protocol.

Built on :mod:`urllib.request` (stdlib only).  The client speaks the
same :mod:`repro.edr.messages` models as the in-process plane and builds
its calls from the shared :data:`repro.service.schemas.ENDPOINTS` table,
so it satisfies :class:`repro.service.plane.ControlPlane` structurally —
swap an ``InProcessControlPlane()`` for ``connect(url)`` and nothing
else changes.
"""

from __future__ import annotations

import urllib.error
import urllib.request

from repro.edr.messages import (
    WIRE_VERSION,
    ErrorResponse,
    EventRequest,
    EventResponse,
    HealthResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    MembershipResponse,
    RegisterRequest,
    RegisterResponse,
    SolveRequest,
    SolveResponse,
    WireEvent,
    WireModel,
)
from repro.errors import ServiceError, VersionMismatchError
from repro.service.schemas import ENDPOINTS, Endpoint

__all__ = ["EDRClient", "connect"]


class EDRClient:
    """Typed SDK for a running control-plane server.

    Every method mirrors an :class:`~repro.service.plane.ControlPlane`
    method: requests are wire models serialized to JSON, responses are
    parsed back into wire models.  Transport or remote failures raise
    :class:`~repro.errors.ServiceError` carrying the HTTP status and the
    remote error type; a 426 raises
    :class:`~repro.errors.VersionMismatchError`.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- transport -----------------------------------------------------------
    def _call(self, endpoint: Endpoint, request: WireModel | None):
        url = self.base_url + endpoint.path
        body = None
        headers = {"Accept": "application/json"}
        if request is not None:
            body = request.to_json().encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=body, headers=headers,
                                     method=endpoint.method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._remote_error(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach control plane at {url}: {exc.reason}") from exc
        if endpoint.response is None:
            return raw
        return endpoint.response.from_json(raw)

    @staticmethod
    def _remote_error(exc: urllib.error.HTTPError) -> Exception:
        detail = ""
        remote_type = None
        try:
            err = ErrorResponse.from_json(exc.read().decode("utf-8"))
            detail = err.detail or err.error
            remote_type = err.error
        except Exception:  # noqa: BLE001 - body may be non-JSON
            detail = str(exc)
        if exc.code == 426 or remote_type == "VersionMismatchError":
            return VersionMismatchError(
                f"server rejected wire version: {detail}",
                expected=WIRE_VERSION)
        return ServiceError(f"HTTP {exc.code}: {detail}",
                            status=exc.code, remote_type=remote_type)

    # -- ControlPlane surface ------------------------------------------------
    def solve(self, request: SolveRequest | None = None,
              **fields) -> SolveResponse:
        """``POST /v1/solve``; pass a :class:`SolveRequest` or its fields."""
        if request is None:
            request = SolveRequest(**fields)
        elif fields:
            raise ServiceError("pass a SolveRequest or fields, not both")
        return self._call(ENDPOINTS["/v1/solve"], request)

    def events(self, events, **_ignored) -> EventResponse:
        """``POST /v1/events``; ``events`` are wire or core event objects."""
        wire = [e if isinstance(e, WireEvent) else WireEvent.from_core(e)
                for e in events]
        return self._call(ENDPOINTS["/v1/events"], EventRequest(events=wire))

    def membership(self) -> MembershipResponse:
        """``GET /v1/membership``."""
        return self._call(ENDPOINTS["/v1/membership"], None)

    def register(self, agent: str, *,
                 capacity_mbps: float | None = None) -> RegisterResponse:
        """``POST /v1/agents/register``."""
        return self._call(
            ENDPOINTS["/v1/agents/register"],
            RegisterRequest(agent=agent, capacity_mbps=capacity_mbps))

    def heartbeat(self, agent: str, *, seq: int = 0) -> HeartbeatResponse:
        """``POST /v1/agents/heartbeat``."""
        return self._call(ENDPOINTS["/v1/agents/heartbeat"],
                          HeartbeatRequest(agent=agent, seq=seq))

    def health(self) -> HealthResponse:
        """``GET /v1/health``."""
        return self._call(ENDPOINTS["/v1/health"], None)

    def metrics_text(self) -> str:
        """``GET /metrics`` — raw Prometheus text exposition."""
        return self._call(ENDPOINTS["/metrics"], None)

    def close(self) -> None:
        """Symmetry with the in-process plane (urllib holds no session)."""

    def __enter__(self) -> "EDRClient":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False


def connect(base_url: str, *, timeout: float = 30.0) -> EDRClient:
    """Health-checked client for the server at ``base_url``.

    The promoted top-level entry point (``repro.connect(url)``).  Raises
    :class:`~repro.errors.ServiceError` if the server is unreachable or
    unhealthy, :class:`~repro.errors.VersionMismatchError` if it speaks
    a newer wire protocol.
    """
    client = EDRClient(base_url, timeout=timeout)
    health = client.health()
    if not health.ok:
        raise ServiceError(f"control plane at {base_url} reports unhealthy")
    if health.wire_version > WIRE_VERSION:
        raise VersionMismatchError(
            f"server speaks wire version {health.wire_version}, "
            f"this client speaks {WIRE_VERSION}",
            got=health.wire_version, expected=WIRE_VERSION)
    return client

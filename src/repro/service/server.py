"""The control-plane HTTP server (stdlib ``http.server``, no new deps).

:class:`ControlPlaneServer` binds a :class:`~repro.service.plane.
ControlPlane` behind the versioned JSON endpoints declared in
:data:`repro.service.schemas.ENDPOINTS`.  The handler is a thin
transport shim: parse the request model, call the plane method, write
the response model — every behavior lives in the plane, so the HTTP
path and the in-process path cannot diverge.

Error mapping:

* malformed payloads / validation failures -> 400 with a typed
  :class:`~repro.edr.messages.ErrorResponse` body;
* wire-version mismatches -> 426 (Upgrade Required);
* unrouted paths -> 404, wrong method on a routed path -> 405;
* anything else -> 500 (the error type is reported, not swallowed).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, VersionMismatchError, WireFormatError
from repro.service.plane import ControlPlane, InProcessControlPlane, \
    ServiceConfig
from repro.service.schemas import ENDPOINTS, ErrorResponse

__all__ = ["ControlPlaneServer", "serve"]

#: Largest request body the server will read, in bytes (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the bound plane via the endpoint table."""

    server_version = "repro-edr"
    protocol_version = "HTTP/1.1"

    # Set by ControlPlaneServer when the handler class is specialized.
    plane: ControlPlane = None

    def log_message(self, *_args) -> None:  # silence per-request stderr
        pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        endpoint = ENDPOINTS.get(self.path)
        if endpoint is None:
            self._send_error(404, "not_found",
                             f"no endpoint at {self.path!r}")
            return
        if endpoint.method != method:
            self._send_error(405, "method_not_allowed",
                             f"{self.path} takes {endpoint.method}")
            return
        try:
            args = ()
            if endpoint.request is not None:
                args = (endpoint.request.from_json(self._read_body()),)
            result = getattr(self.plane, endpoint.plane_method)(*args)
        except VersionMismatchError as exc:
            self._send_error(426, type(exc).__name__, str(exc))
            return
        except (WireFormatError, ReproError, ValueError) as exc:
            self._send_error(400, type(exc).__name__, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - typed 500, not a crash
            self._send_error(500, type(exc).__name__, str(exc))
            return
        if endpoint.response is None:
            self._send_text(200, result,
                            "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._send_text(200, result.to_json(), "application/json")

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise WireFormatError(
                f"request body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, error: str, detail: str) -> None:
        payload = ErrorResponse(error=error, detail=detail, status=status)
        self._send_text(status, payload.to_json(), "application/json")


class ControlPlaneServer:
    """A running control-plane service bound to an in-process plane.

    ``config.port=0`` (the default) binds a free port; read the live
    address from :attr:`url`.  :meth:`close` shuts the listener down
    *and* closes the plane — including any live
    :class:`~repro.edr.coordinator.ShardCoordinator` worker pools — so a
    ``with`` block leaks neither sockets nor processes.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 plane: ControlPlane | None = None,
                 recorder=None) -> None:
        self.config = config if config is not None else ServiceConfig()
        if plane is None:
            plane = InProcessControlPlane(self.config, recorder=recorder)
        self.plane = plane
        handler = type("BoundHandler", (_Handler,), {"plane": plane})
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound (possibly OS-assigned) port."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should connect to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ControlPlaneServer":
        """Serve in a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``__main__`` path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the plane; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.plane.close()

    def __enter__(self) -> "ControlPlaneServer":
        return self.start()

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False


def serve(config: ServiceConfig | None = None, *,
          plane: ControlPlane | None = None,
          recorder=None) -> ControlPlaneServer:
    """Start a control-plane server; returns it already listening.

    The promoted top-level entry point (``repro.serve()``)::

        server = repro.serve()
        client = repro.connect(server.url)
    """
    return ControlPlaneServer(config, plane=plane, recorder=recorder).start()

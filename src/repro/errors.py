"""Exception hierarchy for the :mod:`repro` package.

All errors raised by library code derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by argument validation derive from the
builtin types *and* from :class:`ReproError` via mixin subclasses).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleProblemError",
    "ConvergenceError",
    "SimulationError",
    "ProcessKilled",
    "MembershipError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, sign, or range)."""


class InfeasibleProblemError(ReproError):
    """The replica-selection instance admits no feasible allocation.

    Raised by :meth:`repro.core.problem.ReplicaSelectionProblem.require_feasible`
    when total demand exceeds reachable capacity, or when a client has no
    latency-eligible replica.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within its budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ProcessKilled(ReproError):
    """Injected into a simulated process to terminate it (fault injection)."""


class MembershipError(ReproError):
    """Invalid operation on the replica membership ring."""

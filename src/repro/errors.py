"""Exception hierarchy for the :mod:`repro` package.

All errors raised by library code derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by argument validation derive from the
builtin types *and* from :class:`ReproError` via mixin subclasses).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleProblemError",
    "ConvergenceError",
    "SimulationError",
    "ProcessKilled",
    "MembershipError",
    "WireFormatError",
    "VersionMismatchError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, sign, or range)."""


class InfeasibleProblemError(ReproError):
    """The replica-selection instance admits no feasible allocation.

    Raised by :meth:`repro.core.problem.ReplicaSelectionProblem.require_feasible`
    when total demand exceeds reachable capacity, or when a client has no
    latency-eligible replica.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance within its budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ProcessKilled(ReproError):
    """Injected into a simulated process to terminate it (fault injection)."""


class MembershipError(ReproError):
    """Invalid operation on the replica membership ring."""


class WireFormatError(ReproError, ValueError):
    """A wire message failed to parse or validate against its schema."""


class VersionMismatchError(WireFormatError):
    """A wire message declared a protocol version this build cannot speak."""

    def __init__(self, message: str, *, got: object = None,
                 expected: int | None = None) -> None:
        super().__init__(message)
        self.got = got
        self.expected = expected


class ServiceError(ReproError):
    """A control-plane service call failed (transport or remote error)."""

    def __init__(self, message: str, *, status: int | None = None,
                 remote_type: str | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.remote_type = remote_type

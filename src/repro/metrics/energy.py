"""Energy and cost accounting across replica sites."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.datacenter import ReplicaSite
from repro.cluster.pricing import JOULES_PER_KWH
from repro.errors import ValidationError

__all__ = ["EnergyAccount"]


class EnergyAccount:
    """Reads per-replica meters and aggregates joules and cents.

    The paper reports both quantities separately because they diverge:
    Fig. 8(a) is cents (the objective EDR minimizes), Fig. 8(b) joules
    (which CDPSM can win while losing on cents).
    """

    def __init__(self, sites: Sequence[ReplicaSite]) -> None:
        if not sites:
            raise ValidationError("need at least one replica site")
        self.sites = list(sites)

    @property
    def names(self) -> list[str]:
        """Replica names in account order."""
        return [s.name for s in self.sites]

    def joules_by_replica(self) -> np.ndarray:
        """Metered energy per replica (J)."""
        return np.array([s.energy_joules() for s in self.sites])

    def cents_by_replica(self) -> np.ndarray:
        """Metered energy cost per replica (cents at the site price)."""
        return np.array([s.energy_cost_cents() for s in self.sites])

    def total_joules(self) -> float:
        """Total system energy (J) — Fig. 8(b)'s quantity."""
        return float(self.joules_by_replica().sum())

    def total_cents(self) -> float:
        """Total system energy cost (cents) — Fig. 8(a)'s quantity."""
        return float(self.cents_by_replica().sum())

    def prices(self) -> np.ndarray:
        """Per-replica electricity prices (cents/kWh)."""
        return np.array([s.price_cents_per_kwh for s in self.sites])

    @staticmethod
    def cents_from_joules(joules, prices) -> np.ndarray:
        """Vectorized joules -> cents at per-replica prices."""
        j = np.asarray(joules, dtype=float)
        p = np.asarray(prices, dtype=float)
        if j.shape != p.shape:
            raise ValidationError("joules/prices length mismatch")
        return j / JOULES_PER_KWH * p

"""JSON (de)serialization of experiment results.

The benchmark harness saves machine-readable results next to the rendered
text reports, so downstream tooling (plotting, regression comparison) can
consume them without re-running experiments.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import ValidationError
from repro.metrics.report import ExperimentResult

__all__ = ["result_to_dict", "result_from_dict", "dump_results",
           "load_results"]


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def result_to_dict(result: ExperimentResult) -> dict:
    """Plain-dict form of a result (JSON-ready)."""
    return {
        "method": result.method,
        "app": result.app,
        "joules_by_replica": result.joules_by_replica.tolist(),
        "cents_by_replica": result.cents_by_replica.tolist(),
        "makespan": result.makespan,
        "response_times": list(result.response_times),
        "extras": _jsonable(result.extras),
    }


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its dict form."""
    required = {"method", "app", "joules_by_replica", "cents_by_replica",
                "makespan"}
    missing = required - set(data)
    if missing:
        raise ValidationError(f"result dict missing keys: {sorted(missing)}")
    return ExperimentResult(
        method=data["method"],
        app=data["app"],
        joules_by_replica=np.asarray(data["joules_by_replica"], dtype=float),
        cents_by_replica=np.asarray(data["cents_by_replica"], dtype=float),
        makespan=float(data["makespan"]),
        response_times=[float(t) for t in data.get("response_times", [])],
        extras=dict(data.get("extras", {})),
    )


def dump_results(results: dict[str, ExperimentResult]) -> str:
    """Serialize a name -> result mapping to a JSON string."""
    return json.dumps({name: result_to_dict(r) for name, r in results.items()},
                      indent=2, sort_keys=True)


def load_results(text: str) -> dict[str, ExperimentResult]:
    """Parse a mapping produced by :func:`dump_results`."""
    raw = json.loads(text)
    if not isinstance(raw, dict):
        raise ValidationError("expected a JSON object of results")
    return {name: result_from_dict(d) for name, d in raw.items()}

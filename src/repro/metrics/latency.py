"""Response-time bookkeeping for the Fig. 9 comparison."""

from __future__ import annotations

from repro.errors import ValidationError
from repro.util.stats import Summary, summarize

__all__ = ["ResponseTimeStats"]


class ResponseTimeStats:
    """Collects per-request response times.

    *Response time* follows the paper's Fig. 9 semantics: the interval
    between a client issuing a request and receiving its load-distribution
    decision (the moment its downloads can begin) — the replica-selection
    system's latency, independent of file size.
    """

    def __init__(self) -> None:
        self._issued: dict[object, float] = {}
        self.samples: list[float] = []

    def issued(self, key, now: float) -> None:
        """Record that request ``key`` was issued at ``now``."""
        if key in self._issued:
            raise ValidationError(f"request {key!r} already issued")
        self._issued[key] = now

    def answered(self, key, now: float) -> None:
        """Record that request ``key`` got its decision at ``now``."""
        try:
            t0 = self._issued.pop(key)
        except KeyError:
            raise ValidationError(f"request {key!r} was never issued") from None
        if now < t0:
            raise ValidationError("response precedes request")
        self.samples.append(now - t0)

    @property
    def pending(self) -> int:
        """Requests issued but not yet answered."""
        return len(self._issued)

    @property
    def count(self) -> int:
        """Answered requests."""
        return len(self.samples)

    def total(self) -> float:
        """Sum of all response times (Fig. 9's cumulative y-axis shape)."""
        return float(sum(self.samples))

    def mean(self) -> float:
        """Mean response time per request."""
        if not self.samples:
            raise ValidationError("no answered requests")
        return self.total() / len(self.samples)

    def summary(self) -> Summary:
        """Distribution summary of response times."""
        return summarize(self.samples)

"""Experiment-result containers and comparison tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.util.tables import render_table

__all__ = ["ExperimentResult", "compare_table"]


@dataclass
class ExperimentResult:
    """One scheduling algorithm's measured outcome on one scenario.

    Attributes
    ----------
    method: scheduler tag ("lddm" / "cdpsm" / "round_robin" / "donar").
    app: application tag ("video" / "dfs").
    joules_by_replica, cents_by_replica: per-replica energy and cost.
    makespan: time until the last transfer finished (s).
    response_times: per-request selection latencies (s).
    extras: free-form diagnostics (message counts, iterations, ...).
    """

    method: str
    app: str
    joules_by_replica: np.ndarray
    cents_by_replica: np.ndarray
    makespan: float
    response_times: list[float] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def total_joules(self) -> float:
        """Total system energy (J)."""
        return float(np.sum(self.joules_by_replica))

    @property
    def total_cents(self) -> float:
        """Total system energy cost (cents)."""
        return float(np.sum(self.cents_by_replica))

    @property
    def mean_response(self) -> float:
        """Mean per-request response time (s)."""
        if not self.response_times:
            raise ValidationError("no response times recorded")
        return float(np.mean(self.response_times))

    def savings_vs(self, other: "ExperimentResult",
                   quantity: str = "cents") -> float:
        """Fractional saving of this result relative to ``other``.

        ``quantity`` is ``"cents"`` (Fig. 8a) or ``"joules"`` (Fig. 8b).
        Positive means this result is cheaper than ``other``.
        """
        if quantity == "cents":
            mine, theirs = self.total_cents, other.total_cents
        elif quantity == "joules":
            mine, theirs = self.total_joules, other.total_joules
        else:
            raise ValidationError("quantity must be 'cents' or 'joules'")
        if theirs <= 0:
            raise ValidationError("cannot compute savings vs zero baseline")
        return 1.0 - mine / theirs


def compare_table(results: Mapping[str, ExperimentResult],
                  replica_names: Sequence[str],
                  quantity: str = "cents",
                  title: str | None = None) -> str:
    """Render a per-replica comparison across methods (Figs. 6-7 layout)."""
    if quantity not in ("cents", "joules"):
        raise ValidationError("quantity must be 'cents' or 'joules'")
    headers = ["replica"] + list(results.keys())
    rows = []
    for i, name in enumerate(replica_names):
        row = [name]
        for method in results:
            vec = (results[method].cents_by_replica if quantity == "cents"
                   else results[method].joules_by_replica)
            row.append(float(vec[i]))
        rows.append(row)
    totals = ["TOTAL"]
    for method in results:
        r = results[method]
        totals.append(r.total_cents if quantity == "cents" else r.total_joules)
    rows.append(totals)
    return render_table(headers, rows, title=title)

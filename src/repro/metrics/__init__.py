"""Measurement and reporting: energy/cost accounting, response times,
power profiles, and experiment-result containers."""

from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import ResponseTimeStats
from repro.metrics.report import ExperimentResult, compare_table

__all__ = [
    "EnergyAccount",
    "ResponseTimeStats",
    "ExperimentResult",
    "compare_table",
]

# Convenience targets for the EDR reproduction.

PYTHON ?= python3

.PHONY: test lint bench bench-full figures quick-figures headline clean

test:
	$(PYTHON) -m pytest tests/

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -m "not slow"

bench-full:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.experiments all

quick-figures:
	$(PYTHON) -m repro.experiments all --quick

headline:
	$(PYTHON) -m repro.experiments headline --runs 40

clean:
	rm -rf benchmarks/reports .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the EDR reproduction.

PYTHON ?= python3

.PHONY: test bench figures quick-figures headline clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.experiments all

quick-figures:
	$(PYTHON) -m repro.experiments all --quick

headline:
	$(PYTHON) -m repro.experiments headline --runs 40

clean:
	rm -rf benchmarks/reports .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Benchmark — cross-batch warm starts: iteration savings vs cold starts.

Two levels, both recorded in ``BENCH_solvers.json``:

* **Solver level** — a drifting sequence of instances (same clients,
  demands wandering batch to batch) solved cold every time vs warm from
  the previous converged point.  This isolates the projection +
  ``recover_mu`` machinery from runtime batching effects.
* **System level** — the full Fig. 9 sweep with ``warm_start`` on vs
  off.  The acceptance bar for the PR: warm starts must cut the total
  LDDM iterations across the sweep by at least 1.5x while the solution
  quality (mean response, per-point objectives) stays equivalent.
"""

import time

import numpy as np
import pytest

from repro.core.lddm import LddmSolver
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.warmstart import (
    WarmStartCache,
    project_warm_start,
    recover_mu,
)
from repro.experiments import fig9

#: Warm and cold answers must agree to well within the solvers' own
#: convergence neighborhood (measured gaps are a few 1e-3 relative).
OBJ_RTOL = 0.01


def _drifting_problems(n_batches=12, n_clients=12, seed=7):
    """Same client set; demands drift ~10% per batch (EDR's steady state).

    Sized like the runtime's actual solves: the batcher caps each chunk
    at a capacity fraction, so real instances have few clients relative
    to replicas and slack headroom.  (Heavily-loaded instances converge
    on the dual limit cycle's schedule regardless of the start point, so
    warm starts buy little there — the runtime never produces those.)
    """
    rng = np.random.default_rng(seed)
    demands = rng.uniform(10, 50, size=n_clients)
    prices = np.asarray([1, 8, 1, 6, 1, 5, 2, 3], dtype=float)
    problems = []
    for _ in range(n_batches):
        demands = np.clip(demands * rng.uniform(0.9, 1.1, size=n_clients),
                          5.0, 60.0)
        problems.append(ReplicaSelectionProblem(
            ProblemData.paper_defaults(demands=demands, prices=prices)))
    return problems


def test_bench_warm_start_solver(benchmark, bench_report):
    problems = _drifting_problems()
    clients = [f"client{i}" for i in range(problems[0].data.n_clients)]
    replicas = [f"replica{j}" for j in range(problems[0].data.n_replicas)]
    kw = dict(max_iter=1500, track_objective=False)

    def solve_sequence(warm):
        cache = WarmStartCache()
        total_iters, objectives = 0, []
        for problem in problems:
            initial = mu0 = None
            if warm:
                entry = cache.lookup(replicas, problem.data.u)
                if entry is not None:
                    initial = project_warm_start(entry, problem, clients)
                    mu0 = recover_mu(problem, initial)
            sol = LddmSolver(problem, **kw).solve(initial, mu0=mu0)
            assert sol.converged
            total_iters += sol.iterations
            objectives.append(sol.objective)
            cache.store(replicas, problem.data.u, clients, sol.allocation,
                        problem.data.mask)
        return total_iters, objectives

    t0 = time.perf_counter()
    cold_iters, cold_obj = solve_sequence(warm=False)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_iters, warm_obj = solve_sequence(warm=True)
    warm_s = time.perf_counter() - t0

    for w, c in zip(warm_obj, cold_obj):
        assert w == pytest.approx(c, rel=OBJ_RTOL)
    assert warm_iters * 1.5 <= cold_iters

    benchmark.pedantic(lambda: solve_sequence(warm=True),
                       rounds=3, iterations=1)
    benchmark.extra_info["cold_iters"] = cold_iters
    benchmark.extra_info["warm_iters"] = warm_iters
    benchmark.extra_info["iter_reduction"] = round(cold_iters / warm_iters, 2)
    bench_report("warm_start_solver", wall_s=warm_s, iterations=warm_iters,
                 cold_iterations=cold_iters, cold_wall_s=round(cold_s, 6),
                 n_batches=len(problems))


def test_bench_warm_start_fig9(benchmark, bench_report):
    t0 = time.perf_counter()
    warm = benchmark.pedantic(
        fig9.run, kwargs={"warm_start": True}, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0
    cold = fig9.run(warm_start=False)

    warm_iters = sum(warm.edr_solve_iterations)
    cold_iters = sum(cold.edr_solve_iterations)
    # The PR's acceptance bar: >= 1.5x fewer LDDM iterations over the
    # whole sweep, with no quality regression at any point.
    assert warm_iters * 1.5 <= cold_iters
    assert sum(warm.edr_solve_time) <= sum(cold.edr_solve_time)
    assert max(warm.edr_mean_response) < 0.2
    for w, c in zip(warm.edr_mean_response, cold.edr_mean_response):
        assert w <= c + 0.01  # warm starts never cost response time

    benchmark.extra_info["warm_iters"] = warm_iters
    benchmark.extra_info["cold_iters"] = cold_iters
    benchmark.extra_info["iter_reduction"] = round(cold_iters / warm_iters, 2)
    benchmark.extra_info["warm_solve_s"] = round(sum(warm.edr_solve_time), 4)
    benchmark.extra_info["cold_solve_s"] = round(sum(cold.edr_solve_time), 4)
    bench_report("warm_start_fig9", wall_s=warm_s, iterations=warm_iters,
                 cold_iterations=cold_iters,
                 warm_solve_s=round(sum(warm.edr_solve_time), 6),
                 cold_solve_s=round(sum(cold.edr_solve_time), 6),
                 request_counts=list(warm.request_counts))

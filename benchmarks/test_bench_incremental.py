"""Benchmark — per-event incremental updates vs warm full re-solves.

Gates for the delta-event path (:mod:`repro.core.incremental`) at the
fig9 10^4-client scale: a single-client event must cost at least 10x
less than the warm full re-solve it replaces while landing on the same
objective, and a longer churn soak must stay fallback-free with bounded
p99 event latency.
"""

import time

from repro.experiments import fig9

#: The acceptance gate: per-event cost vs the warm full re-solve.
MIN_SPEEDUP = 10.0

#: Relative objective gap the incremental answer must stay within.
MAX_REL_GAP = 1e-6


def test_bench_incremental_events(benchmark, report_sink, bench_report,
                                  fig9_trajectory):
    start = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run_incremental_events,
        kwargs={"n_clients": 10_000, "n_events": 200},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("incremental_events", result.render())
    bench_report("incremental_events", wall_s=wall_s,
                 iterations=result.n_events,
                 n_clients=result.n_clients,
                 mean_event_ms=round(result.mean_event_ms(), 4),
                 p99_event_ms=round(result.event_p(99), 4),
                 mean_resolve_ms=round(result.mean_resolve_ms(), 4),
                 speedup=round(result.speedup(), 2),
                 fallbacks=result.fallbacks)
    fig9_trajectory(
        incremental_clients=result.n_clients,
        incremental_events=result.n_events,
        incremental_mean_event_ms=round(result.mean_event_ms(), 4),
        incremental_p99_event_ms=round(result.event_p(99), 4),
        incremental_resolve_ms=round(result.mean_resolve_ms(), 4),
        incremental_speedup=round(result.speedup(), 2),
        incremental_worst_gap=float(f"{result.worst_gap():.3e}"),
        incremental_event_ms_series=list(result.event_ms),
        wall_s=round(wall_s, 3))
    # The acceptance gate: a per-client event is at least 10x cheaper
    # than the warm full re-solve it replaces.
    assert result.speedup() >= MIN_SPEEDUP
    # ...while landing on the solver's answer at every compared event.
    assert result.worst_gap() <= MAX_REL_GAP
    assert result.fallbacks == 0
    benchmark.extra_info["mean_event_ms"] = round(result.mean_event_ms(), 4)
    benchmark.extra_info["speedup"] = round(result.speedup(), 2)


def test_bench_incremental_churn_soak(benchmark, report_sink, bench_report):
    # Sustained churn: 1000 arrivals/departures/demand changes against
    # one state, objective-checked every 25 events.  The population and
    # total demand random-walk, so this exercises drift accounting and
    # headroom tracking far past what the headline bench touches.
    start = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run_incremental_events,
        kwargs={"n_clients": 10_000, "n_events": 1000, "compare_every": 25,
                "event_seed": 11},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("incremental_churn_soak", result.render())
    bench_report("incremental_churn_soak", wall_s=wall_s,
                 iterations=result.n_events,
                 n_clients=result.n_clients,
                 p99_event_ms=round(result.event_p(99), 4),
                 speedup=round(result.speedup(), 2),
                 fallbacks=result.fallbacks)
    # Tail latency stays bounded across the whole soak...
    assert result.event_p(99) <= 5.0
    # ...the allocation never drifts off the solver's answer...
    assert result.worst_gap() <= MAX_REL_GAP
    # ...and the state absorbs the churn without bailing to full solves.
    assert result.fallbacks == 0
    benchmark.extra_info["p99_event_ms"] = round(result.event_p(99), 4)

"""Benchmark — ablations: step sizes, topologies, LDDM variants, comm."""

from repro.experiments import ablations


def test_bench_ablation_stepsize(benchmark, report_sink):
    result = benchmark.pedantic(ablations.run_stepsize, rounds=1,
                                iterations=1)
    report_sink("ablation_stepsize", result.render())
    gaps = {(row[0], row[1]): row[3] for row in result.rows}
    # Constant steps (the paper's choice) reach a small neighborhood.
    assert gaps[("lddm", "constant")] < 1.0


def test_bench_ablation_topology(benchmark, report_sink):
    result = benchmark.pedantic(ablations.run_topology, rounds=1,
                                iterations=1)
    report_sink("ablation_topology", result.render())
    gaps = {row[0]: row[2] for row in result.rows}
    assert gaps["complete (paper)"] < 5.0


def test_bench_ablation_lddm_variants(benchmark, report_sink):
    result = benchmark.pedantic(ablations.run_lddm_variants, rounds=1,
                                iterations=1)
    report_sink("ablation_lddm_variants", result.render())
    by_label = {row[0]: row for row in result.rows}
    full = by_label["full (prox + suffix-avg + warm mu)"]
    exact = by_label["exact subproblem (paper)"]
    # The stabilized variant needs no more iterations than the raw one.
    assert full[1] <= exact[1]


def test_bench_ablation_gossip(benchmark, report_sink):
    result = benchmark.pedantic(ablations.run_gossip, rounds=1, iterations=1)
    report_sink("ablation_gossip", result.render())
    gaps = {row[0]: row[2] for row in result.rows}
    # Both consensus styles solve the problem; gossip within a few percent.
    assert gaps["gossip (random pair/round)"] < 10.0


def test_bench_ablation_comm_complexity(benchmark, report_sink):
    result = benchmark.pedantic(ablations.run_comm_complexity, rounds=1,
                                iterations=1)
    report_sink("ablation_comm_complexity", result.render())
    lddm = [row[1] for row in result.rows]
    cdpsm = [row[2] for row in result.rows]
    ns = [row[0] for row in result.rows]
    # O(C*N) vs O(C*N^3): the ratio cdpsm/lddm must grow ~quadratically.
    ratio_first = cdpsm[0] / lddm[0]
    ratio_last = cdpsm[-1] / lddm[-1]
    assert ratio_last > ratio_first * (ns[-1] / ns[0])

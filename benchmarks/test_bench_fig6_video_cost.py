"""Benchmark — Fig. 6: per-replica energy cost, video streaming."""

from repro.experiments import fig6_fig7


def test_bench_fig6_video_cost(benchmark, report_sink, json_sink):
    result = benchmark.pedantic(fig6_fig7.run, kwargs={"app": "video"},
                                rounds=1, iterations=1)
    report_sink("fig6_video_cost", result.render())
    json_sink("fig6_video_cost", result.results)
    rr = result.results["round_robin"]
    lddm_saving = result.results["lddm"].savings_vs(rr, "cents")
    cdpsm_saving = result.results["cdpsm"].savings_vs(rr, "cents")
    benchmark.extra_info["lddm_cost_saving_pct"] = round(100 * lddm_saving, 2)
    benchmark.extra_info["cdpsm_cost_saving_pct"] = round(100 * cdpsm_saving, 2)
    # Paper shape: both EDR variants beat Round-Robin; LDDM is cheapest.
    assert lddm_saving > 0
    assert cdpsm_saving > 0
    assert result.results["lddm"].total_cents <= \
        result.results["cdpsm"].total_cents
    # EDR shifts cost share onto the cheap (price <= 2) replicas.
    assert result.cheap_replica_share("lddm") > \
        result.cheap_replica_share("round_robin")

"""Benchmark — the sharded dual-price control plane at 10^6-10^7 clients.

Gates for :mod:`repro.edr.coordinator` at the scale the ROADMAP's
"millions of users" north star cares about: the 10^6-client fig9-style
point must solve end-to-end through the sharded plane inside a fixed
wall budget with a bounded objective gap against the tight monolithic
aggregated solve (and bit-identical allocations across execution
modes), and the shard-routed event stream must keep per-event cost
independent of the total client count.  The persistent-fleet gate pins
the long-lived-plane regime: consecutive solves on one coordinator at
least 2x faster with the shared-memory worker fleet than with a
per-solve pool, per-round shipped bytes independent of round count,
and online re-partitioning that migrates classes under demand skew
without tearing the plane down.  The 10^7-client point and the long
churn soak carry the ``slow`` marker — ``make bench`` skips them,
``make bench-full`` runs everything.
"""

import time

import pytest

from repro.experiments import fig9

#: Relative objective gap the sharded answer must stay within.
MAX_REL_GAP = 1e-6

#: End-to-end wall budget for the 10^6-client sharded solve
#: (aggregation + exchange rounds + expansion; measured ~4 s).
WALL_BUDGET_1E6_S = 30.0

#: End-to-end wall budget for the 10^7-client sharded solve
#: (measured ~35 s).
WALL_BUDGET_1E7_S = 180.0

#: Tail-latency bound on a shard-routed client event.
P99_EVENT_MS = 5.0

#: Minimum wall-time advantage the persistent worker fleet must keep
#: over the legacy per-solve pool across consecutive solves.
MIN_FLEET_SPEEDUP = 2.0


def test_bench_shard_million_clients(benchmark, report_sink, bench_report,
                                     fig9_trajectory):
    start = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run_sharded_scaling,
        kwargs={"client_counts": (1_000_000,), "n_shards": 4,
                "n_replicas": 6, "n_patterns": 24,
                "check_mode": "thread"},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("shard_scaling", result.render())
    bench_report("shard_scaling", wall_s=wall_s,
                 iterations=sum(result.rounds),
                 n_clients=result.client_counts[-1],
                 n_shards=result.n_shards,
                 n_classes=result.n_classes[-1],
                 sharded_s=round(result.sharded_solve_s[-1], 4),
                 monolithic_s=round(result.monolithic_solve_s[-1], 4),
                 worst_gap=float(f"{result.worst_gap():.3e}"))
    fig9_trajectory(
        shard_clients=result.client_counts[-1],
        shard_count=result.n_shards,
        shard_classes=result.n_classes[-1],
        shard_solve_s=round(result.sharded_solve_s[-1], 4),
        shard_monolithic_s=round(result.monolithic_solve_s[-1], 4),
        shard_rounds=result.rounds[-1],
        shard_worst_gap=float(f"{result.worst_gap():.3e}"),
        shard_modes_identical=all(result.modes_identical),
        wall_s=round(wall_s, 3))
    # The acceptance gate: the 10^6-client point solves end-to-end
    # inside the wall budget...
    assert result.sharded_solve_s[-1] <= WALL_BUDGET_1E6_S
    # ...lands within the gap bound of the tight monolithic solve...
    assert result.worst_gap() <= MAX_REL_GAP
    # ...and a second execution mode reproduces the serial allocation
    # bit-for-bit (deterministic exchange rounds).
    assert all(result.modes_identical)
    benchmark.extra_info["sharded_s"] = round(result.sharded_solve_s[-1], 4)
    benchmark.extra_info["worst_gap"] = float(f"{result.worst_gap():.3e}")


def test_bench_shard_event_stream_scale_free(benchmark, report_sink,
                                             bench_report, fig9_trajectory):
    # Same churn stream routed through planes built at 10^5 and 10^6
    # clients: events touch only the owning shard's class rows, so the
    # per-event cost must not grow with the client count.
    small = fig9.run_sharded_events(n_clients=100_000, n_events=200)
    start = time.perf_counter()
    large = benchmark.pedantic(
        fig9.run_sharded_events,
        kwargs={"n_clients": 1_000_000, "n_events": 200},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("shard_events", small.render() + "\n\n" + large.render())
    bench_report("shard_events", wall_s=wall_s,
                 iterations=large.n_events,
                 n_clients=large.n_clients,
                 n_shards=large.n_shards,
                 mean_event_ms=round(large.mean_event_ms(), 4),
                 p99_event_ms=round(large.event_p(99), 4),
                 small_mean_event_ms=round(small.mean_event_ms(), 4),
                 refreshes=large.refreshes,
                 fallbacks=large.fallbacks)
    fig9_trajectory(
        shard_event_clients=large.n_clients,
        shard_event_count=large.n_events,
        shard_event_mean_ms=round(large.mean_event_ms(), 4),
        shard_event_p99_ms=round(large.event_p(99), 4),
        shard_event_small_mean_ms=round(small.mean_event_ms(), 4),
        shard_event_refreshes=large.refreshes,
        shard_event_fallbacks=large.fallbacks,
        wall_s=round(wall_s, 3))
    # Tail latency stays bounded at both scales...
    assert small.event_p(99) <= P99_EVENT_MS
    assert large.event_p(99) <= P99_EVENT_MS
    # ...and 10x the clients does not mean costlier events (generous
    # 3x margin over the small plane's mean absorbs timer noise).
    assert large.mean_event_ms() <= 3.0 * max(small.mean_event_ms(), 0.05)
    benchmark.extra_info["p99_event_ms"] = round(large.event_p(99), 4)


def test_bench_shard_persistent_fleet(benchmark, report_sink, bench_report,
                                      fig9_trajectory):
    # Consecutive solves on ONE long-lived coordinator: the persistent
    # shared-memory fleet vs the legacy per-solve process pool.  One
    # retry absorbs scheduler noise on loaded CI boxes — the gate is on
    # the better of (at most) two full runs.
    start = time.perf_counter()
    result = benchmark.pedantic(fig9.run_persistent_fleet,
                                rounds=1, iterations=1)
    if result.speedup() < MIN_FLEET_SPEEDUP:
        retry = fig9.run_persistent_fleet()
        if retry.speedup() > result.speedup():
            result = retry
    wall_s = time.perf_counter() - start
    bpr = result.bytes_per_round()
    report_sink("shard_fleet", result.render())
    bench_report("shard_fleet", wall_s=wall_s,
                 iterations=result.rounds_shipped,
                 n_clients=result.n_clients,
                 n_shards=result.n_shards,
                 n_solves=result.n_solves,
                 fleet_ms=round(sum(result.fleet_walls) * 1000, 3),
                 baseline_ms=round(sum(result.baseline_walls) * 1000, 3),
                 speedup=round(result.speedup(), 3),
                 static_bytes=result.static_bytes,
                 reships=result.reships)
    fig9_trajectory(
        fleet_clients=result.n_clients,
        fleet_shards=result.n_shards,
        fleet_solves=result.n_solves,
        fleet_ms=round(sum(result.fleet_walls) * 1000, 3),
        fleet_baseline_ms=round(sum(result.baseline_walls) * 1000, 3),
        fleet_speedup=round(result.speedup(), 3),
        fleet_bytes_per_round=round(max(bpr), 1),
        fleet_reships=result.reships,
        fleet_identical=result.serial_identical,
        wall_s=round(wall_s, 3))
    # The acceptance gate: >= 5 consecutive solves on one coordinator,
    # at least 2x faster with the persistent fleet...
    assert result.n_solves >= 5
    assert result.speedup() >= MIN_FLEET_SPEEDUP
    # ...per-round shipped bytes independent of how many rounds ran
    # (the delta-only contract: every round ships the same task)...
    assert bpr and max(bpr) - min(bpr) <= 1e-9
    # ...no geometry re-ship across demand-only retargets...
    assert result.reships == 0
    # ...and the fleet's allocation is bit-identical to serial.
    assert result.serial_identical
    benchmark.extra_info["speedup"] = round(result.speedup(), 3)


def test_bench_shard_elastic_skew(benchmark, report_sink, bench_report,
                                  fig9_trajectory):
    # A hot-spot arrival stream skews one shard's demand share past the
    # rebalance threshold: the coordinator must migrate classes off the
    # hot shard while the stream runs — no plane teardown — and a
    # process-mode replay must land bit-identical to serial.
    start = time.perf_counter()
    result = benchmark.pedantic(fig9.run_elastic_skew,
                                rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("shard_elastic", result.render())
    bench_report("shard_elastic", wall_s=wall_s,
                 iterations=result.events,
                 n_clients=result.n_clients,
                 n_shards=result.n_shards,
                 migrations=result.migrations,
                 resizes=result.resizes,
                 skew_peak=round(result.skew_peak, 3),
                 skew_after=round(result.skew_after, 3))
    fig9_trajectory(
        elastic_clients=result.n_clients,
        elastic_events=result.events,
        elastic_migrations=result.migrations,
        elastic_resizes=result.resizes,
        elastic_skew_peak=round(result.skew_peak, 3),
        elastic_skew_after=round(result.skew_after, 3),
        elastic_identical=result.modes_identical,
        wall_s=round(wall_s, 3))
    # The skewed-demand scenario must trigger online migration...
    assert result.migrations >= 1
    # ...without ever tearing the plane down...
    assert result.resizes == 0
    # ...leaving the plane inside the refresh threshold...
    assert result.final_residual <= 1e-3
    # ...and both execution modes replay the stream bit-identically,
    # migrating at the same events.
    assert result.modes_identical
    benchmark.extra_info["migrations"] = result.migrations


@pytest.mark.slow
def test_bench_shard_ten_million_clients(benchmark, report_sink,
                                         bench_report, fig9_trajectory):
    start = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run_sharded_scaling,
        kwargs={"client_counts": (10_000_000,), "n_shards": 4,
                "n_replicas": 6, "n_patterns": 24,
                "check_mode": "thread"},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("shard_scaling_1e7", result.render())
    bench_report("shard_scaling_1e7", wall_s=wall_s,
                 iterations=sum(result.rounds),
                 n_clients=result.client_counts[-1],
                 n_shards=result.n_shards,
                 sharded_s=round(result.sharded_solve_s[-1], 4),
                 monolithic_s=round(result.monolithic_solve_s[-1], 4),
                 worst_gap=float(f"{result.worst_gap():.3e}"))
    fig9_trajectory(
        shard_clients=result.client_counts[-1],
        shard_count=result.n_shards,
        shard_solve_s=round(result.sharded_solve_s[-1], 4),
        shard_monolithic_s=round(result.monolithic_solve_s[-1], 4),
        shard_rounds=result.rounds[-1],
        shard_worst_gap=float(f"{result.worst_gap():.3e}"),
        shard_modes_identical=all(result.modes_identical),
        wall_s=round(wall_s, 3))
    assert result.sharded_solve_s[-1] <= WALL_BUDGET_1E7_S
    assert result.worst_gap() <= MAX_REL_GAP
    assert all(result.modes_identical)
    benchmark.extra_info["sharded_s"] = round(result.sharded_solve_s[-1], 4)


@pytest.mark.slow
def test_bench_shard_churn_soak(benchmark, report_sink, bench_report):
    # Sustained churn against a 10^6-client plane: 1000 mixed events,
    # declines and residual drift recovered inside the coordinator.
    start = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run_sharded_events,
        kwargs={"n_clients": 1_000_000, "n_events": 1000,
                "event_seed": 11},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("shard_churn_soak", result.render())
    bench_report("shard_churn_soak", wall_s=wall_s,
                 iterations=result.n_events,
                 n_clients=result.n_clients,
                 p99_event_ms=round(result.event_p(99), 4),
                 refreshes=result.refreshes,
                 fallbacks=result.fallbacks,
                 final_residual=float(f"{result.final_residual:.3e}"))
    # Tail latency stays bounded across the whole soak...
    assert result.event_p(99) <= P99_EVENT_MS
    # ...and the plane never drifts past the refresh threshold.
    assert result.final_residual <= 1e-3
    benchmark.extra_info["p99_event_ms"] = round(result.event_p(99), 4)

"""Benchmark — Fig. 5: CDPSM vs LDDM convergence (3 replicas)."""

from repro.experiments import fig5


def test_bench_fig5_convergence(benchmark, report_sink):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    report_sink("fig5_convergence", result.render())
    benchmark.extra_info["lddm_iters_to_1pct"] = \
        result.lddm_iterations_to_1pct
    benchmark.extra_info["cdpsm_iters_to_1pct"] = \
        result.cdpsm_iterations_to_1pct
    # The paper's claim: LDDM converges faster.
    assert result.lddm_iterations_to_1pct < result.cdpsm_iterations_to_1pct

"""Benchmarks — the extension experiments (beyond the paper's figures)."""

from repro.experiments import ext_dynamic_prices, ext_geo_latency, ext_standby


def test_bench_ext_dynamic_prices(benchmark, report_sink):
    result = benchmark.pedantic(ext_dynamic_prices.run, rounds=1,
                                iterations=1)
    report_sink("ext_dynamic_prices", result.render())
    # Tariff-aware EDR beats both the stale scheduler and Round-Robin.
    assert result.aware.total_cents < result.stale.total_cents
    assert result.aware.total_cents < result.round_robin.total_cents
    benchmark.extra_info["saving_vs_stale_pct"] = round(
        100 * (1 - result.aware.total_cents / result.stale.total_cents), 2)


def test_bench_ext_geo_latency(benchmark, report_sink):
    result = benchmark.pedantic(ext_geo_latency.run, rounds=1, iterations=1)
    report_sink("ext_geo_latency", result.render())
    import numpy as np
    finite = [c for c in result.costs if np.isfinite(c)]
    # Tightening T can only raise the optimal cost...
    assert all(b >= a * (1 - 1e-6) for a, b in zip(finite, finite[1:]))
    # ...and eventually breaks feasibility.
    assert result.infeasible_below_ms > 0


def test_bench_ext_standby(benchmark, report_sink):
    result = benchmark.pedantic(ext_standby.run, rounds=1, iterations=1)
    report_sink("ext_standby", result.render())
    for algo in result.joules_on:
        assert result.joules_standby[algo] < result.joules_on[algo]
    # EDR's concentration creates more sleep opportunity than RR's spread.
    lddm_gain = 1 - result.joules_standby["lddm"] / result.joules_on["lddm"]
    rr_gain = 1 - result.joules_standby["round_robin"] \
        / result.joules_on["round_robin"]
    assert lddm_gain > rr_gain
    benchmark.extra_info["lddm_standby_saving_pct"] = round(100 * lddm_gain, 1)
    benchmark.extra_info["rr_standby_saving_pct"] = round(100 * rr_gain, 1)

"""Benchmark-harness plumbing.

Each benchmark regenerates one of the paper's figures at full scale,
prints the same rows/series the paper reports, and saves the rendered
report under ``benchmarks/reports/`` so EXPERIMENTS.md can cite it.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import json
import pathlib
import subprocess

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: Machine-readable solver-benchmark ledger (appended across runs).
BENCH_LEDGER = REPORT_DIR / "BENCH_solvers.json"

#: Repo-level perf trajectory for the headline fig9 bench: one compact
#: record per run (largest-point solve time, total iterations, git rev)
#: at the repository root, so the trend is visible without digging into
#: ``benchmarks/reports/``.
FIG9_TRAJECTORY = pathlib.Path(__file__).parent.parent / "BENCH_fig9.json"


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture
def report_sink():
    """Returns a writer that prints and persists a figure report."""
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture
def json_sink():
    """Writer persisting machine-readable results next to the text report."""
    from repro.metrics.serialize import dump_results

    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, results: dict) -> None:
        (REPORT_DIR / f"{name}.json").write_text(dump_results(results))

    return write


@pytest.fixture
def fig9_trajectory():
    """Appends one summary record per fig9 bench run to ``BENCH_fig9.json``.

    The top-level trajectory file holds only the headline numbers —
    everything else stays in the detailed ledger.  List-of-float fields
    (e.g. the incremental bench's per-event-latency series) are rounded
    so the trajectory file stays compact and diffable.
    """
    rev = _git_rev()

    def write(**fields) -> dict:
        record = {"git_rev": rev}
        for k, v in sorted(fields.items()):
            if isinstance(v, list) and v and \
                    all(isinstance(x, float) for x in v):
                v = [round(x, 4) for x in v]
            record[k] = v
        try:
            history = json.loads(FIG9_TRAJECTORY.read_text())
            if not isinstance(history, list):
                history = []
        except (OSError, ValueError):
            history = []
        history.append(record)
        FIG9_TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")
        return record

    return write


@pytest.fixture
def bench_report():
    """Appends solver-benchmark records to ``BENCH_solvers.json``.

    Each record is ``{bench, params, wall_s, iterations, git_rev}`` —
    the append-only ledger regression tooling (and EXPERIMENTS.md)
    reads solver timing history from.  Extra keyword arguments are
    folded into ``params``.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    rev = _git_rev()

    def write(bench: str, wall_s: float, iterations: int,
              **params) -> dict:
        record = {
            "bench": str(bench),
            "params": {k: v for k, v in sorted(params.items())},
            "wall_s": round(float(wall_s), 6),
            "iterations": int(iterations),
            "git_rev": rev,
        }
        try:
            history = json.loads(BENCH_LEDGER.read_text())
            if not isinstance(history, list):
                history = []
        except (OSError, ValueError):
            history = []
        history.append(record)
        BENCH_LEDGER.write_text(json.dumps(history, indent=2) + "\n")
        return record

    return write

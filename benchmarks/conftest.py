"""Benchmark-harness plumbing.

Each benchmark regenerates one of the paper's figures at full scale,
prints the same rows/series the paper reports, and saves the rendered
report under ``benchmarks/reports/`` so EXPERIMENTS.md can cite it.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture
def report_sink():
    """Returns a writer that prints and persists a figure report."""
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture
def json_sink():
    """Writer persisting machine-readable results next to the text report."""
    from repro.metrics.serialize import dump_results

    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, results: dict) -> None:
        (REPORT_DIR / f"{name}.json").write_text(dump_results(results))

    return write

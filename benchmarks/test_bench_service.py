"""Benchmark — the control-plane service under live HTTP load.

Drives a real :class:`~repro.service.server.ControlPlaneServer` (not a
mock) through the typed SDK: one armed solve, then a sustained stream of
churn event batches plus membership/metrics scrapes — the request mix an
external orchestrator produces.  Gates:

* end-to-end parity: the allocation served over HTTP is exactly the
  in-process one (JSON round-trips floats via ``repr``);
* sustained throughput: the event stream must clear a conservative
  requests/second floor (the transport must not dominate the solver);
* the wall time lands in ``BENCH_fig9.json`` so
  ``check_bench_regression.py`` gates service-path regressions like any
  other bench.
"""

import time

import numpy as np

from repro.edr.messages import SolveRequest, WireEvent
from repro.service import InProcessControlPlane, connect, serve

#: Clients in the armed instance.
N_CLIENTS = 2_000

#: Replicas (the paper's 8-node System G slice).
N_REPLICAS = 8

#: Churn events streamed through the live server.
N_EVENTS = 100

#: Events per POST /v1/events batch.
BATCH = 10

#: Conservative floor on sustained event-batch requests/second over
#: loopback HTTP (each batch carries BATCH events through the
#: incremental plane).  Measured ~23 on a dev box; the floor catches
#: step-change regressions, not scheduler jitter.
MIN_BATCH_RPS = 5.0


def _build_request(rng) -> SolveRequest:
    demands = rng.uniform(0.5, 2.0, N_CLIENTS)
    # A handful of eligibility patterns -> a small class space, the
    # regime the incremental plane is built for.
    patterns = np.ones((6, N_REPLICAS), dtype=bool)
    for i in range(1, 6):
        patterns[i, (i * 2) % N_REPLICAS] = False
    assignment = rng.integers(0, 6, N_CLIENTS)
    return SolveRequest(
        demands=demands.tolist(),
        prices=[1.0, 8.0, 1.0, 6.0, 1.0, 5.0, 2.0, 3.0],
        capacities=[4000.0] * N_REPLICAS,
        mask=patterns[assignment].tolist(),
        clients=[f"c{i}" for i in range(N_CLIENTS)],
        options={"max_iter": 5000})


def _event_stream(rng):
    events = []
    for i in range(N_EVENTS):
        roll = rng.random()
        if roll < 0.4:
            events.append(WireEvent(
                kind="arrival", client=f"new{i}",
                demand=float(rng.uniform(0.5, 2.0)),
                eligibility=[True] * N_REPLICAS))
        elif roll < 0.7:
            events.append(WireEvent(
                kind="demand_change", client=f"c{int(rng.integers(0, N_CLIENTS))}",
                demand=float(rng.uniform(0.5, 2.0))))
        else:
            events.append(WireEvent(
                kind="arrival", client=f"flip{i}",
                demand=float(rng.uniform(0.1, 0.5)),
                eligibility=[True] * N_REPLICAS))
    return events


def test_bench_service_load(report_sink, bench_report, fig9_trajectory):
    rng = np.random.default_rng(20130923)
    request = _build_request(rng)
    events = _event_stream(rng)

    wall_start = time.perf_counter()
    with serve() as server:
        client = connect(server.url)

        t0 = time.perf_counter()
        via_http = client.solve(request)
        solve_s = time.perf_counter() - t0
        assert via_http.converged

        t0 = time.perf_counter()
        batches = 0
        for i in range(0, len(events), BATCH):
            resp = client.events(events[i:i + BATCH])
            assert resp.applied == len(events[i:i + BATCH])
            batches += 1
        events_s = time.perf_counter() - t0
        batch_rps = batches / events_s

        client.register("bench-replica")
        membership = client.membership()
        scrape = client.metrics_text()
    wall_s = time.perf_counter() - wall_start

    # Parity: HTTP serves exactly the in-process answer.
    with InProcessControlPlane() as local:
        direct = local.solve(request)
    gap = np.max(np.abs(np.asarray(via_http.allocation)
                        - np.asarray(direct.allocation)))
    assert gap <= 1e-9
    assert membership.replicas == ["bench-replica"]
    assert "repro_service_requests_total" in scrape

    event_ms = 1000.0 * events_s / len(events)
    lines = [
        "service load benchmark (live HTTP, loopback)",
        f"  clients={N_CLIENTS} replicas={N_REPLICAS} "
        f"events={len(events)} batch={BATCH}",
        f"  solve: {solve_s * 1000:.1f} ms end-to-end "
        f"(solver {via_http.solve_time_s * 1000:.1f} ms)",
        f"  events: {batch_rps:.1f} batches/s, {event_ms:.2f} ms/event",
        f"  parity vs in-process: {gap:.1e}",
    ]
    report_sink("service_load", "\n".join(lines))
    bench_report("service_load", wall_s=wall_s, iterations=len(events),
                 n_clients=N_CLIENTS, batch_rps=round(batch_rps, 1),
                 event_ms=round(event_ms, 3),
                 solve_ms=round(solve_s * 1000, 1))
    fig9_trajectory(
        service_clients=N_CLIENTS,
        service_events=len(events),
        service_batch_rps=round(batch_rps, 1),
        service_event_ms=round(event_ms, 3),
        service_solve_ms=round(solve_s * 1000, 1),
        service_parity_gap=float(f"{gap:.1e}"),
        wall_s=round(wall_s, 3))

    assert batch_rps >= MIN_BATCH_RPS

"""Benchmark — the headline numbers: randomized-sweep average savings.

Paper: avg 12% LDDM cost saving vs Round-Robin and avg 22.64% CDPSM
energy saving across 40 randomized runs.  The full 40-run sweep is
expensive; the benchmark default uses 12 runs (set REPRO_HEADLINE_RUNS
to override) — the distribution is stable well before 40.
"""

import os

import numpy as np

from repro.experiments import headline


def test_bench_headline_savings(benchmark, report_sink):
    n_runs = int(os.environ.get("REPRO_HEADLINE_RUNS", "12"))
    result = benchmark.pedantic(headline.run, kwargs={"n_runs": n_runs},
                                rounds=1, iterations=1)
    report_sink("headline_savings", result.render())
    mean_lddm_cost = float(np.mean(result.lddm_cost_savings))
    benchmark.extra_info["mean_lddm_cost_saving_pct"] = round(
        100 * mean_lddm_cost, 2)
    benchmark.extra_info["mean_cdpsm_cost_saving_pct"] = round(
        100 * float(np.mean(result.cdpsm_cost_savings)), 2)
    benchmark.extra_info["mean_cdpsm_energy_saving_pct"] = round(
        100 * float(np.mean(result.cdpsm_energy_savings)), 2)
    # The paper's primary headline: LDDM saves cost vs Round-Robin on
    # average (paper: 12%; our substrate's measured value is recorded in
    # EXPERIMENTS.md).
    assert mean_lddm_cost > 0

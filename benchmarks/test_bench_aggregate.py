"""Benchmark — class-space aggregation: parity gate + large-C scaling.

Two gates:

* the aggregated LDDM solve lands on the reference optimum of a
  fig9-style instance (the reduction is exact, so any drift is a solver
  bug, not a modeling one);
* the fig9-regime scaling sweep reaches 10^5 clients aggregated, with a
  >= 10x wall-time speedup over the direct path at the largest size both
  run — the ledger records every point for the perf trajectory.
"""

import time

from repro.core.lddm import solve_lddm
from repro.core.reference import solve_reference
from repro.experiments import fig9

#: Sweep sizes: direct timed through 2e4 clients, aggregated to 1e5.
SCALING_CLIENTS = (2_000, 10_000, 20_000, 50_000, 100_000)
DIRECT_LIMIT = 20_000


def test_bench_aggregate_parity(bench_report):
    prob = fig9.scaling_problem(256)
    start = time.perf_counter()
    agg = solve_lddm(prob, aggregate=True, max_iter=800, tol=1e-6)
    wall_s = time.perf_counter() - start
    ref = solve_reference(prob)
    assert agg.objective <= ref.objective * (1 + 1e-4)
    assert prob.violation(agg.allocation) < 1e-8
    bench_report("aggregate_parity", wall_s=wall_s,
                 iterations=agg.iterations, clients=256,
                 objective=round(agg.objective, 3),
                 reference=round(ref.objective, 3))


def test_bench_aggregate_scaling(benchmark, report_sink, bench_report):
    result = benchmark.pedantic(
        fig9.run_solver_scaling,
        kwargs={"client_counts": SCALING_CLIENTS,
                "direct_limit": DIRECT_LIMIT},
        rounds=1, iterations=1)
    report_sink("aggregate_scaling", result.render())
    for i, count in enumerate(result.client_counts):
        bench_report(
            "aggregate_scaling", wall_s=result.aggregate_solve_s[i],
            iterations=result.aggregate_iterations[i], clients=count,
            n_classes=result.n_classes[i],
            direct_s=(None if result.direct_solve_s[i] is None
                      else round(result.direct_solve_s[i], 6)))
    speedup = result.speedup()
    largest_both = max(
        c for c, d in zip(result.client_counts, result.direct_solve_s)
        if d is not None)
    bench_report("aggregate_speedup",
                 wall_s=sum(result.aggregate_solve_s),
                 iterations=sum(result.aggregate_iterations),
                 speedup=round(speedup, 2), at_clients=largest_both,
                 largest_aggregated=max(result.client_counts))
    # Acceptance gates: the sweep completes at >= 5e4 clients aggregated,
    # and the aggregated path is >= 10x faster at the largest common size.
    assert max(result.client_counts) >= 50_000
    assert speedup >= 10.0
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["agg_ms"] = [
        round(1000 * v, 1) for v in result.aggregate_solve_s]

"""Benchmark — Fig. 7: per-replica energy cost, distributed file service."""

from repro.experiments import fig6_fig7


def test_bench_fig7_dfs_cost(benchmark, report_sink, json_sink):
    result = benchmark.pedantic(fig6_fig7.run, kwargs={"app": "dfs"},
                                rounds=1, iterations=1)
    report_sink("fig7_dfs_cost", result.render())
    json_sink("fig7_dfs_cost", result.results)
    rr = result.results["round_robin"]
    lddm_saving = result.results["lddm"].savings_vs(rr, "cents")
    benchmark.extra_info["lddm_cost_saving_pct"] = round(100 * lddm_saving, 2)
    benchmark.extra_info["cdpsm_cost_saving_pct"] = round(
        100 * result.results["cdpsm"].savings_vs(rr, "cents"), 2)
    # Paper shape: EDR (LDDM) beats Round-Robin on cost for DFS too.
    assert lddm_saving > 0
    assert result.cheap_replica_share("lddm") > \
        result.cheap_replica_share("round_robin")

"""Micro-benchmarks of the numerical kernels (regression tracking).

Unlike the figure benchmarks (single full-scale runs), these use
pytest-benchmark's statistical timing over many rounds, so kernel
performance regressions show up in `--benchmark-compare` workflows.

The ``test_bench_batched_*`` benchmarks time one full solver run in
batched vs scalar mode on the same instance and record the measured
speedup in ``extra_info`` — the headline numbers for the kernel layer.
"""

import time

import numpy as np
import pytest

from repro.core.cdpsm import CdpsmSolver
from repro.core.lddm import LddmSolver
from repro.core.params import ProblemData
from repro.core.problem import ReplicaSelectionProblem
from repro.core.projection import (
    project_demands,
    project_local_set,
    project_simplex,
)
from repro.core.subproblem import ReplicaSubproblem, solve_replica_subproblem
from repro.core import model
from repro.net.flows import Flow, max_min_fair_rates
from repro.sim.engine import Simulator


def test_bench_kernel_simplex_projection(benchmark):
    rng = np.random.default_rng(0)
    v = rng.uniform(-10, 10, size=256)
    out = benchmark(project_simplex, v, 100.0)
    assert abs(out.sum() - 100.0) < 1e-6


def test_bench_kernel_demand_projection(benchmark):
    rng = np.random.default_rng(0)
    P = rng.uniform(-5, 30, size=(64, 8))
    R = rng.uniform(1, 50, size=64)
    mask = np.ones((64, 8), dtype=bool)
    out = benchmark(project_demands, P, R, mask)
    assert np.allclose(out.sum(axis=1), R)


def test_bench_kernel_dykstra_local_set(benchmark):
    rng = np.random.default_rng(1)
    P = rng.uniform(0, 20, size=(32, 8))
    R = P.sum(axis=1) * 0.9
    mask = np.ones((32, 8), dtype=bool)
    out = benchmark(project_local_set, P, R, mask, 2, 60.0)
    assert np.allclose(out.sum(axis=1), R, atol=1e-5)


def test_bench_kernel_lddm_subproblem(benchmark):
    rng = np.random.default_rng(2)
    sub = ReplicaSubproblem(
        price=5.0, alpha=1.0, beta=0.01, gamma=3.0, bandwidth=100.0,
        mu=rng.uniform(-60, 0, size=64), ref=rng.uniform(0, 10, size=64),
        epsilon=0.5)
    out = benchmark(solve_replica_subproblem, sub)
    assert out.sum() <= 100.0 + 1e-6


def test_bench_kernel_energy_gradient(benchmark):
    rng = np.random.default_rng(3)
    data = ProblemData.paper_defaults(
        demands=rng.uniform(10, 50, size=128),
        prices=rng.integers(1, 21, size=8).astype(float))
    P = ReplicaSelectionProblem(data).uniform_allocation()
    out = benchmark(model.energy_gradient, data, P)
    assert out.shape == (128, 8)


def _bench_instance(n_clients, n_replicas, seed=0):
    rng = np.random.default_rng(seed)
    data = ProblemData.paper_defaults(
        demands=rng.uniform(10, 50, size=n_clients),
        prices=rng.integers(1, 21, size=n_replicas).astype(float))
    return ReplicaSelectionProblem(data)


def _timed_solve(problem, cls, **kw):
    start = time.perf_counter()
    result = cls(problem, **kw).solve()
    return result, time.perf_counter() - start


@pytest.mark.parametrize("n_clients,n_replicas", [(16, 32), (64, 32)])
def test_bench_batched_cdpsm(benchmark, bench_report, n_clients, n_replicas):
    problem = _bench_instance(n_clients, n_replicas)
    kw = dict(max_iter=10)
    scalar, scalar_s = _timed_solve(problem, CdpsmSolver, batched=False, **kw)
    batched, batched_s = _timed_solve(problem, CdpsmSolver, batched=True, **kw)
    assert abs(batched.objective - scalar.objective) < 1e-6
    benchmark.pedantic(
        lambda: CdpsmSolver(problem, batched=True, **kw).solve(),
        rounds=3, iterations=1)
    benchmark.extra_info["scalar_s"] = round(scalar_s, 4)
    benchmark.extra_info["batched_s"] = round(batched_s, 4)
    benchmark.extra_info["speedup"] = round(scalar_s / batched_s, 2)
    bench_report("batched_cdpsm", wall_s=batched_s,
                 iterations=batched.iterations, n_clients=n_clients,
                 n_replicas=n_replicas, scalar_s=round(scalar_s, 6))


@pytest.mark.parametrize("n_clients,n_replicas", [(16, 32), (64, 32)])
def test_bench_batched_lddm(benchmark, bench_report, n_clients, n_replicas):
    problem = _bench_instance(n_clients, n_replicas)
    kw = dict(max_iter=40)
    scalar, scalar_s = _timed_solve(problem, LddmSolver, batched=False, **kw)
    batched, batched_s = _timed_solve(problem, LddmSolver, batched=True, **kw)
    assert abs(batched.objective - scalar.objective) < 1e-6
    benchmark.pedantic(
        lambda: LddmSolver(problem, batched=True, **kw).solve(),
        rounds=3, iterations=1)
    benchmark.extra_info["scalar_s"] = round(scalar_s, 4)
    benchmark.extra_info["batched_s"] = round(batched_s, 4)
    benchmark.extra_info["speedup"] = round(scalar_s / batched_s, 2)
    bench_report("batched_lddm", wall_s=batched_s,
                 iterations=batched.iterations, n_clients=n_clients,
                 n_replicas=n_replicas, scalar_s=round(scalar_s, 6))


def test_bench_kernel_max_min_fair(benchmark):
    sim = Simulator()
    rng = np.random.default_rng(4)
    nodes = [f"n{i}" for i in range(16)]
    flows = [Flow(sim, nodes[int(rng.integers(16))],
                  nodes[(int(rng.integers(15)) + 1 +
                         int(rng.integers(16))) % 16], 1.0)
             for _ in range(64)]
    flows = [f for f in flows if f.src != f.dst]
    caps = {n: 100.0 for n in nodes}
    rates = benchmark(max_min_fair_rates, flows, caps)
    assert all(r >= 0 for r in rates.values())

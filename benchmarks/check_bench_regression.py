"""Wall-time regression gate over the ``BENCH_fig9.json`` trajectory.

The trajectory file is an append-only ledger: every fig9-family bench
appends one flat record per run, and records from the same bench share
the same field names.  This checker groups records by that signature
(the sorted field names, minus the per-run ``git_rev``/``wall_s``),
takes the two newest entries of each group, and fails when the newest
wall time regressed more than the allowed margin over its predecessor.

Run from the repository root (CI does, right after the shard benches
append fresh records)::

    python benchmarks/check_bench_regression.py [path/to/BENCH_fig9.json]

A group with fewer than two records is reported but never fails — the
first run of a new bench *establishes* its baseline.  The margin is
deliberately loose (20% plus an absolute slack) because CI boxes are
noisy; the gate exists to catch step-change regressions, not jitter.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Newest wall may exceed the previous run's by this factor...
MAX_RATIO = 1.2

#: ...plus this absolute slack (seconds), so sub-second benches do not
#: fail on scheduler noise alone.
SLACK_S = 1.0

#: Per-run fields excluded from the grouping signature.
_VOLATILE = ("git_rev", "wall_s")


def signature(record: dict) -> tuple[str, ...]:
    """A record's bench identity: its sorted non-volatile field names."""
    return tuple(sorted(k for k in record if k not in _VOLATILE))


def check(path: pathlib.Path) -> int:
    """Print a per-bench verdict; return the number of regressions."""
    try:
        history = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"bench-regression: cannot read {path}: {exc}")
        return 1
    if not isinstance(history, list) or not history:
        print(f"bench-regression: {path} holds no records; nothing to gate")
        return 0
    groups: dict[tuple[str, ...], list[dict]] = {}
    for record in history:
        if isinstance(record, dict) and \
                isinstance(record.get("wall_s"), (int, float)):
            groups.setdefault(signature(record), []).append(record)
    failures = 0
    for sig, records in sorted(groups.items()):
        label = "/".join(sig[:3]) + ("..." if len(sig) > 3 else "")
        if len(records) < 2:
            print(f"  baseline  {label}: first record "
                  f"({records[-1]['wall_s']:.3f}s), nothing to compare")
            continue
        prev, newest = records[-2], records[-1]
        budget = prev["wall_s"] * MAX_RATIO + SLACK_S
        verdict = "ok" if newest["wall_s"] <= budget else "REGRESSED"
        print(f"  {verdict:>9}  {label}: {newest['wall_s']:.3f}s vs "
              f"{prev['wall_s']:.3f}s (budget {budget:.3f}s, "
              f"{newest.get('git_rev', '?')} vs {prev.get('git_rev', '?')})")
        if verdict == "REGRESSED":
            failures += 1
    return failures


def main(argv: list[str]) -> int:
    default = pathlib.Path(__file__).parent.parent / "BENCH_fig9.json"
    path = pathlib.Path(argv[1]) if len(argv) > 1 else default
    print(f"bench-regression gate over {path}")
    failures = check(path)
    if failures:
        print(f"bench-regression: {failures} bench(es) regressed more "
              f"than {MAX_RATIO:.0%} + {SLACK_S}s over the previous run")
        return 1
    print("bench-regression: no wall-time regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Benchmark — Fig. 9: response-time scaling, EDR vs DONAR."""

import time

from repro.experiments import fig9


def test_bench_fig9_scaling(benchmark, report_sink, bench_report,
                            fig9_trajectory):
    start = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run, kwargs={"request_counts": fig9.DEFAULT_REQUEST_COUNTS},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    report_sink("fig9_scaling", result.render())
    bench_report("fig9_scaling", wall_s=wall_s,
                 iterations=sum(result.edr_solve_iterations),
                 request_counts=list(result.request_counts),
                 edr_solve_s=round(sum(result.edr_solve_time), 6))
    fig9_trajectory(
        largest_point_requests=int(result.request_counts[-1]),
        largest_point_solve_s=round(result.edr_solve_time[-1], 6),
        largest_point_mean_response_s=round(result.edr_mean_response[-1], 6),
        total_iterations=int(sum(result.edr_solve_iterations)),
        wall_s=round(wall_s, 3))
    # Paper shape: < 200 ms per request throughout the sweep...
    assert max(result.edr_mean_response) < 0.2
    # ... EDR comparable to DONAR ...
    for e, d in zip(result.edr_mean_response, result.donar_mean_response):
        assert e < 5 * d + 0.2
    # ... and total response work grows (near-linearly) with request count.
    totals = result.edr_total_response
    assert all(b >= a for a, b in zip(totals, totals[1:]))
    benchmark.extra_info["edr_ms"] = [
        round(1000 * v, 1) for v in result.edr_mean_response]
    benchmark.extra_info["donar_ms"] = [
        round(1000 * v, 1) for v in result.donar_mean_response]
    benchmark.extra_info["edr_solve_s"] = [
        round(v, 4) for v in result.edr_solve_time]

"""Benchmark — the high-throughput traffic engine vs the legacy data plane.

Gates for the coalesced + vectorized engine (``docs/ARCHITECTURE.md``,
"Traffic engine"): at 10^4 requests the end-to-end ``EDRSystem.run``
wall clock must beat the legacy per-request scalar path by at least 5x
while landing on the same trajectory to 1e-9 (per-replica cents, mean
response), the 10^5-request scaling point must complete, and the Fig.
6/7 paper scenarios must render byte-identically under either engine.
"""

import time

import numpy as np
import pytest

from repro.experiments import fig6_fig7
from repro.experiments.runtime_common import ALGORITHMS, run_runtime
from repro.experiments.scenarios import PAPER_DFS, PAPER_VIDEO

#: The acceptance gate: end-to-end runtime speedup at the 10^4 point.
MIN_SPEEDUP_10K = 5.0

#: Per-replica cents / mean-response agreement between the two paths.
MAX_GAP = 1e-9

#: Engine configs: the default (coalesced + vector) and the legacy
#: per-request scalar path it replaces.
NEW = dict(coalesce=True, flow_kernel="vector")
LEGACY = dict(coalesce=False, flow_kernel="scalar")


def _gaps(a, b):
    cents = float(np.max(np.abs(a.cents_by_replica - b.cents_by_replica)))
    resp = abs(a.mean_response - b.mean_response)
    return cents, resp


def _sweep(request_counts, legacy_limit):
    return fig6_fig7.run_traffic_scaling(request_counts=request_counts,
                                         legacy_limit=legacy_limit)


def test_bench_traffic_smoke(benchmark, report_sink, bench_report,
                             fig9_trajectory):
    # The smallest scaling point, both paths — CI's traffic smoke.
    start = time.perf_counter()
    result = benchmark.pedantic(
        _sweep, kwargs={"request_counts": (1_000,), "legacy_limit": 1_000},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    point = result.point(1_000)
    report_sink("traffic_smoke", result.render())
    bench_report("traffic_smoke", wall_s=wall_s, iterations=1_000,
                 wall_new_s=round(point.wall_new_s, 3),
                 wall_legacy_s=round(point.wall_legacy_s, 3),
                 speedup=round(point.speedup, 2))
    fig9_trajectory(
        traffic_smoke_requests=1_000,
        traffic_smoke_new_s=round(point.wall_new_s, 3),
        traffic_smoke_legacy_s=round(point.wall_legacy_s, 3),
        traffic_smoke_speedup=round(point.speedup, 2),
        traffic_smoke_coalesced=point.result_new.extras["flows_coalesced"],
        wall_s=round(wall_s, 3))
    # Exactness is non-negotiable at any scale; the speedup gate at this
    # size is loose (fixed control-plane cost still dominates).
    assert point.cents_gap <= MAX_GAP
    assert point.response_gap <= MAX_GAP
    assert point.result_new.extras["flows_coalesced"] > 0
    assert point.speedup >= 1.0
    benchmark.extra_info["speedup"] = round(point.speedup, 2)


def test_bench_traffic_speedup_10k(benchmark, report_sink, bench_report,
                                   fig9_trajectory):
    # The tentpole gate: 10^4 requests through the full runtime, both
    # engine paths on the same trace.
    start = time.perf_counter()
    result = benchmark.pedantic(
        _sweep, kwargs={"request_counts": (10_000,), "legacy_limit": 10_000},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    point = result.point(10_000)
    report_sink("traffic_speedup_10k", result.render())
    bench_report("traffic_speedup_10k", wall_s=wall_s, iterations=10_000,
                 wall_new_s=round(point.wall_new_s, 3),
                 wall_legacy_s=round(point.wall_legacy_s, 3),
                 speedup=round(point.speedup, 2),
                 coalesced=point.result_new.extras["flows_coalesced"],
                 recomputes=point.result_new.extras["flow_recomputes"])
    fig9_trajectory(
        traffic_requests=10_000,
        traffic_new_s=round(point.wall_new_s, 3),
        traffic_legacy_s=round(point.wall_legacy_s, 3),
        traffic_speedup=round(point.speedup, 2),
        traffic_coalesced=point.result_new.extras["flows_coalesced"],
        traffic_recomputes=point.result_new.extras["flow_recomputes"],
        traffic_cents_gap=float(f"{point.cents_gap:.3e}"),
        wall_s=round(wall_s, 3))
    assert point.speedup >= MIN_SPEEDUP_10K, \
        (point.wall_new_s, point.wall_legacy_s)
    assert point.cents_gap <= MAX_GAP
    assert point.response_gap <= MAX_GAP
    benchmark.extra_info["speedup"] = round(point.speedup, 2)


@pytest.mark.slow
def test_bench_traffic_scale_100k(benchmark, report_sink, bench_report,
                                  fig9_trajectory):
    # The scaling headline: 10^5 requests end to end on the new engine
    # (the legacy path is far past its practical range here).
    start = time.perf_counter()
    result = benchmark.pedantic(
        _sweep, kwargs={"request_counts": (100_000,), "legacy_limit": 0},
        rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    point = result.point(100_000)
    report_sink("traffic_scale_100k", result.render())
    bench_report("traffic_scale_100k", wall_s=wall_s, iterations=100_000,
                 wall_new_s=round(point.wall_new_s, 3),
                 coalesced=point.result_new.extras["flows_coalesced"],
                 recomputes=point.result_new.extras["flow_recomputes"])
    fig9_trajectory(
        traffic_scale_requests=100_000,
        traffic_scale_new_s=round(point.wall_new_s, 3),
        traffic_scale_coalesced=point.result_new.extras["flows_coalesced"],
        wall_s=round(wall_s, 3))
    # Completing with every request answered IS the gate.
    assert len(point.result_new.response_times) == 100_000
    assert point.result_new.extras["flows_coalesced"] > 0


def _fig67_parity_lines():
    lines = []
    for scenario in (PAPER_VIDEO, PAPER_DFS):
        app = scenario.app.name
        new = {a: run_runtime(scenario, a, **NEW) for a in ALGORITHMS}
        old = {a: run_runtime(scenario, a, **LEGACY) for a in ALGORITHMS}
        for algo in ALGORITHMS:
            cents_gap, resp_gap = _gaps(new[algo], old[algo])
            lines.append(f"{app}/{algo}: cents_gap={cents_gap:.3e} "
                         f"resp_gap={resp_gap:.3e}")
            assert cents_gap <= MAX_GAP, (app, algo, cents_gap)
            assert resp_gap <= MAX_GAP, (app, algo, resp_gap)
        new_table = fig6_fig7.PerReplicaCostResult(scenario, new).render()
        old_table = fig6_fig7.PerReplicaCostResult(scenario, old).render()
        assert new_table == old_table, f"{app} table differs between engines"
        lines.append(f"{app}: rendered table byte-identical "
                     f"({len(new_table)} bytes)")
    return lines


def test_bench_fig67_engine_parity(benchmark, report_sink):
    # The paper scenarios (Fig. 6 video, Fig. 7 DFS) must be untouched
    # by the engine swap: same per-replica cents and responses to 1e-9
    # for every scheduler, and byte-identical rendered figure tables.
    lines = benchmark.pedantic(_fig67_parity_lines, rounds=1, iterations=1)
    report_sink("traffic_fig67_parity", "\n".join(lines))

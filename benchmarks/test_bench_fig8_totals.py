"""Benchmark — Fig. 8: total energy cost (a) and consumption (b)."""

from repro.experiments import fig8


def test_bench_fig8_totals(benchmark, report_sink, json_sink):
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    report_sink("fig8_totals", result.render())
    json_sink("fig8_totals", {f"{app}/{algo}": r
                              for (app, algo), r in result.results.items()})
    for app in result.apps():
        cents = {algo: result.results[(app, algo)].total_cents
                 for algo in ("lddm", "cdpsm", "round_robin")}
        # Fig. 8(a): LDDM lowest cost, Round-Robin highest.
        assert cents["lddm"] <= cents["cdpsm"]
        assert cents["lddm"] < cents["round_robin"]
        rr = result.results[(app, "round_robin")]
        benchmark.extra_info[f"{app}_lddm_cost_saving_pct"] = round(
            100 * result.results[(app, "lddm")].savings_vs(rr, "cents"), 2)
        benchmark.extra_info[f"{app}_cdpsm_energy_saving_pct"] = round(
            100 * result.results[(app, "cdpsm")].savings_vs(rr, "joules"), 2)
        # Fig. 8(b)'s lesson — cost-optimal is not joule-optimal: the cost
        # winner must not also dominate every energy column (our substrate
        # reproduces the divergence, see EXPERIMENTS.md).
    joules_video = {algo: result.results[("video", algo)].total_joules
                    for algo in ("lddm", "cdpsm", "round_robin")}
    benchmark.extra_info["video_joules"] = {
        k: round(v) for k, v in joules_video.items()}

"""Benchmark — telemetry overhead and trace reconciliation.

Two gates for the :mod:`repro.obs` subsystem:

* **NullRecorder overhead** — the default (disabled) recorder must not
  slow the headline fig9 sweep: instrumentation behind ``rec.enabled``
  costs one attribute check per site.  The wall time is compared against
  the most recent ``BENCH_fig9.json`` trajectory record and appended to
  the ledger so the cross-commit trend stays visible.
* **Trace reconciliation** — a traced fig9 point must (a) leave the
  simulation bit-identical to an untraced run, and (b) produce totals
  (iterations, batches, warm hits, simulated solve seconds) that agree
  exactly with the ``ExperimentResult.extras`` accounting the warm-start
  benchmarks assert against.
"""

import json
import time

import pytest

from benchmarks.conftest import FIG9_TRAJECTORY
from repro.experiments import fig9
from repro.obs import TraceRecorder, from_jsonl, summary

#: Allowed fig9 wall-time regression vs the recorded trajectory.  The
#: ISSUE bar is 2%; the in-test gate is looser because single-run wall
#: times on shared CI machines jitter more than that — the ledger keeps
#: the exact numbers for offline comparison.
WALL_REGRESSION_FACTOR = 1.25


def _previous_fig9_wall() -> float | None:
    try:
        history = json.loads(FIG9_TRAJECTORY.read_text())
    except (OSError, ValueError):
        return None
    walls = [r["wall_s"] for r in history if "wall_s" in r]
    return float(walls[-1]) if walls else None


def test_bench_null_recorder_overhead(benchmark, bench_report,
                                      fig9_trajectory):
    prev_wall = _previous_fig9_wall()
    t0 = time.perf_counter()
    fig9.run(request_counts=fig9.DEFAULT_REQUEST_COUNTS)
    wall_first = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        fig9.run, kwargs={"request_counts": fig9.DEFAULT_REQUEST_COUNTS},
        rounds=1, iterations=1)
    # min-of-2 damps shared-machine jitter.
    wall_s = min(wall_first, time.perf_counter() - t0)
    assert max(result.edr_mean_response) < 0.2
    benchmark.extra_info["wall_s"] = round(wall_s, 3)
    benchmark.extra_info["previous_wall_s"] = prev_wall
    # Gate first: a failing run must not append a slower baseline for
    # the next run to be compared against.
    if prev_wall is not None:
        assert wall_s <= prev_wall * WALL_REGRESSION_FACTOR, \
            (f"fig9 with the default NullRecorder took {wall_s:.2f}s vs "
             f"{prev_wall:.2f}s recorded in {FIG9_TRAJECTORY.name}")
    bench_report("obs_null_overhead", wall_s=wall_s,
                 iterations=sum(result.edr_solve_iterations),
                 previous_wall_s=prev_wall)
    fig9_trajectory(
        largest_point_requests=int(result.request_counts[-1]),
        largest_point_solve_s=round(result.edr_solve_time[-1], 6),
        largest_point_mean_response_s=round(result.edr_mean_response[-1], 6),
        total_iterations=int(sum(result.edr_solve_iterations)),
        wall_s=round(wall_s, 3))


def test_bench_trace_reconciliation(benchmark, bench_report, tmp_path):
    counts = (24, 48)
    baseline = fig9.run(request_counts=counts)
    rec = TraceRecorder()
    traced = benchmark.pedantic(
        fig9.run, kwargs={"request_counts": counts, "recorder": rec},
        rounds=1, iterations=1)

    # (a) Tracing must not perturb the simulation at all.
    assert traced.edr_mean_response == baseline.edr_mean_response
    assert traced.edr_solve_iterations == baseline.edr_solve_iterations

    # (b) Trace totals reconcile with the result's own accounting.
    s = summary(rec)
    assert s["sessions"]["iterations"] == sum(traced.edr_solve_iterations)
    assert s["sessions"]["sim_s"] \
        == pytest.approx(sum(traced.edr_solve_time))
    batches = s["counters"]["runtime.batches"]
    assert s["sessions"]["count"] == batches
    hits, misses = s["warm_start"]["hits"], s["warm_start"]["misses"]
    assert hits + misses == batches
    # warm_start=True over multi-batch points: the cache must land hits
    # (the regime test_bench_warm_start.py's 1.5x iteration bar rides on).
    assert hits > 0
    assert s["warm_start"]["hit_rate"] > 0.5
    # Transport saw at least the solver-coordination traffic the
    # sessions' precomputed plans account for.
    assert s["net"]["messages"] >= s["sessions"]["messages"]

    # (c) The export round-trips as valid JSONL.
    path = tmp_path / "fig9.jsonl"
    from repro.obs import to_jsonl
    n = to_jsonl(rec, path)
    assert len(from_jsonl(path)) == n > 0

    benchmark.extra_info["records"] = len(rec.records)
    benchmark.extra_info["warm_hit_rate"] = round(s["warm_start"]["hit_rate"], 3)
    bench_report("obs_trace_reconciliation", wall_s=0.0,
                 iterations=s["sessions"]["iterations"],
                 records=len(rec.records), warm_hits=hits,
                 warm_misses=misses, request_counts=list(counts))

"""Benchmark — Figs. 3-4: per-replica runtime power profiles (DFS)."""

from repro.experiments import fig3_fig4


def test_bench_fig3_fig4_power_profiles(benchmark, report_sink):
    results = benchmark.pedantic(fig3_fig4.run, rounds=1, iterations=1)
    report = (results["cdpsm"].render() + "\n\n" +
              results["lddm"].render())
    report_sink("fig3_fig4_power_profiles", report)

    for res in results.values():
        for series in res.profiles.values():
            # Profiles live in the SystemG envelope (Figs. 3-4 y-ranges).
            assert series.min() >= 215.0 - 1e-9
            assert series.max() <= 240.0 + 1e-9

    # LDDM's average power is below CDPSM's (less coordination work).
    def mean_power(res):
        vals = [s.mean() for s in res.profiles.values() if len(s) > 1]
        return sum(vals) / len(vals)

    benchmark.extra_info["cdpsm_mean_w"] = round(mean_power(results["cdpsm"]), 2)
    benchmark.extra_info["lddm_mean_w"] = round(mean_power(results["lddm"]), 2)
    assert mean_power(results["lddm"]) <= mean_power(results["cdpsm"]) + 0.5
